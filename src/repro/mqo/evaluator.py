"""Deterministic workload evaluation — the GA's fitness function.

Section 3.2: "An important GA component is the evaluation function.  Given
a particular chromosome representing one workload permutation, the function
deterministically calculates the information value of a given workload
execution order."

The evaluator replays a permutation analytically (no discrete-event run):
it tracks when each server (local DSS server and every remote site) becomes
free, and for each query — in permutation order — picks the candidate plan
with the best *realized* IV given those availabilities, then commits the
plan's resource usage.  Candidate plans per query are enumerated once and
cached (gather combos at the arrival instant and at scheduled sync points
within the scatter bound).

Because this is the GA's inner loop, the default code path is a layered
fast path that produces bit-identical results to the straightforward
replay (retained as :meth:`WorkloadEvaluator.evaluate_naive`):

* **Plan compilation** — every candidate plan is lowered once into an
  immutable record of floats and tuples (processing, transmission, commit
  legs, a sorted sync-completion array per replica read) so realizing a
  candidate is pure tuple/float arithmetic with zero ``Catalog`` or
  ``Replica`` calls; each record carries an IV upper bound, and suffix
  maxima of those bounds let the candidate loop stop as soon as no
  remaining plan can beat the incumbent.
* **Prefix memoization** — order crossover and swap mutation produce
  children sharing long prefixes with their parents, so the evaluator
  caches ``(query-id prefix) → (free_at snapshot, assignment, partial
  IV)`` in a trie and resumes from the longest cached prefix instead of
  replaying from position 0.  Past the shared prefix, a second memo keyed
  on ``(query, clocks of that query's candidate sites)`` serves repeated
  identical plan choices — the choice is a pure function of exactly those
  inputs.  Both caches are bounded: exceeding the entry cap resets them
  (a generational clear), so memory stays flat across GA generations.
* **Observability** — an :class:`EvaluatorStats` struct counts prefix
  hits, resume depths, realize calls (actual vs. what a naive replay would
  have cost), pruned candidates, and the silent caps applied while
  enumerating candidates (24-hour horizon clamp, ``max_candidates`` cut).
"""

from __future__ import annotations

import threading
import typing
from bisect import bisect_right
from dataclasses import dataclass, field

from repro.core.enumeration import CostProvider, enumerate_plans
from repro.core.plan import QueryPlan, VersionKind
from repro.core.value import DiscountRates, information_value, max_tolerable_latency
from repro.errors import OptimizationError
from repro.federation.catalog import Catalog
from repro.federation.site import LOCAL_SITE_ID
from repro.obs.profile import PROFILER, profiled

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from collections.abc import Sequence

    from repro.federation.faults import AvailabilityView
    from repro.workload.query import DSSQuery, Workload

__all__ = [
    "Assignment",
    "EvaluationResult",
    "EvaluatorStats",
    "WorkloadEvaluator",
]

#: Lookahead cap while enumerating candidate start times (minutes).
CANDIDATE_HORIZON_CAP = 24 * 60.0

#: Safety factor on compiled IV upper bounds: libm ``pow`` is only
#: correct to ~1 ulp, so inflate bounds slightly to keep pruning exact.
_BOUND_SLACK = 1.0 + 1e-9

#: How far past a requested instant compiled timelines extend, so repeated
#: nearby lookups rarely re-enter the (slow) schedule-extension path.
_TIMELINE_SLACK = 64.0


@dataclass(frozen=True)
class Assignment:
    """One query's realized execution inside a schedule."""

    query: "DSSQuery"
    plan: QueryPlan
    arrival: float
    begin: float
    completed: float
    data_timestamp: float

    @property
    def computational_latency(self) -> float:
        """Realized CL under the schedule."""
        return self.completed - self.arrival

    @property
    def synchronization_latency(self) -> float:
        """Realized SL under the schedule."""
        return max(0.0, self.completed - self.data_timestamp)

    @property
    def information_value(self) -> float:
        """Realized IV under the schedule."""
        return information_value(
            self.query.business_value,
            self.computational_latency,
            self.synchronization_latency,
            self.plan.rates,
        )


@dataclass
class EvaluationResult:
    """Realized schedule for one permutation."""

    assignments: list[Assignment] = field(default_factory=list)

    @property
    def total_information_value(self) -> float:
        """Sum of realized IVs (the workload objective, Section 3.2)."""
        return sum(a.information_value for a in self.assignments)

    @property
    def mean_information_value(self) -> float:
        """Mean realized IV."""
        if not self.assignments:
            return 0.0
        return self.total_information_value / len(self.assignments)

    @property
    def max_wait(self) -> float:
        """Largest begin-after-arrival wait (starvation indicator)."""
        return max((a.begin - a.arrival for a in self.assignments), default=0.0)


@dataclass
class EvaluatorStats:
    """Counters instrumenting the evaluation fast path.

    ``naive_realize_calls`` is what a from-scratch replay of every
    evaluated sequence would have cost (one realization per candidate per
    position); ``realize_calls`` is what the fast path actually performed.
    The gap decomposes into positions resumed from the prefix trie and
    candidates pruned by their IV upper bound.
    """

    evaluations: int = 0
    realize_calls: int = 0
    naive_realize_calls: int = 0
    candidates_pruned: int = 0
    prefix_hits: int = 0
    prefix_queries_skipped: int = 0
    choice_hits: int = 0
    choice_evictions: int = 0
    resume_depths: dict[int, int] = field(default_factory=dict)
    trie_entries: int = 0
    trie_evictions: int = 0
    horizon_capped: int = 0
    candidate_plans_dropped: int = 0
    candidates_unavailable: int = 0

    @property
    def realize_calls_avoided(self) -> int:
        """Realizations a naive replay would have done but the fast path skipped."""
        return self.naive_realize_calls - self.realize_calls

    @property
    def realize_reduction_factor(self) -> float:
        """naive/actual realization ratio (``inf`` when nothing was realized)."""
        if self.realize_calls == 0:
            return float("inf") if self.naive_realize_calls else 1.0
        return self.naive_realize_calls / self.realize_calls

    def merge(self, other: "EvaluatorStats") -> None:
        """Accumulate another stats struct into this one (for reporting)."""
        self.evaluations += other.evaluations
        self.realize_calls += other.realize_calls
        self.naive_realize_calls += other.naive_realize_calls
        self.candidates_pruned += other.candidates_pruned
        self.prefix_hits += other.prefix_hits
        self.prefix_queries_skipped += other.prefix_queries_skipped
        self.choice_hits += other.choice_hits
        self.choice_evictions += other.choice_evictions
        for depth, count in other.resume_depths.items():
            self.resume_depths[depth] = self.resume_depths.get(depth, 0) + count
        self.trie_entries += other.trie_entries
        self.trie_evictions += other.trie_evictions
        self.horizon_capped += other.horizon_capped
        self.candidate_plans_dropped += other.candidate_plans_dropped
        self.candidates_unavailable += other.candidates_unavailable

    def summary(self) -> str:
        """One-line digest for experiment output."""
        return (
            f"evaluations={self.evaluations} "
            f"realize_calls={self.realize_calls} "
            f"avoided={self.realize_calls_avoided} "
            f"(x{self.realize_reduction_factor:.1f}) "
            f"prefix_hits={self.prefix_hits} "
            f"choice_hits={self.choice_hits} "
            f"pruned={self.candidates_pruned} "
            f"horizon_capped={self.horizon_capped} "
            f"plans_dropped={self.candidate_plans_dropped} "
            f"unavailable={self.candidates_unavailable}"
        )


class _CompiledTimeline:
    """One replica's sync completions as a raw sorted array + bisect.

    Mirrors ``Replica.freshness_at`` exactly: last completion ≤ t, falling
    back to the initial timestamp.  The array reference is live and
    append-only (see ``SyncSchedule.completions_through``); a coverage
    watermark keeps the rare schedule-extension call out of the hot loop.
    """

    __slots__ = ("replica", "times", "initial", "covered")

    def __init__(self, replica, covered: float) -> None:
        self.replica = replica
        self.times = replica.completions_through(covered)
        self.initial = replica.initial_timestamp
        self.covered = covered

    def freshness(self, time: float) -> float:
        if time > self.covered:
            horizon = time + _TIMELINE_SLACK
            self.times = self.replica.completions_through(horizon)
            self.covered = horizon
        index = bisect_right(self.times, time)
        if index == 0:
            return self.initial
        return self.times[index - 1]


@dataclass(slots=True)
class _CompiledPlan:
    """One candidate plan lowered to pure floats/tuples for the hot loop."""

    plan: QueryPlan
    start_time: float
    earliest_begin: float  # max(start_time, arrival)
    processing: float
    transmission: float
    sites: tuple[int, ...]  # all involved servers, local first
    commit_legs: tuple[tuple[int, float], ...]  # (site, busy minutes past begin)
    timelines: tuple[_CompiledTimeline, ...]  # one per replica version read
    has_base: bool
    business_value: float
    comp_base: float  # 1 - λ_CL (0.0 disables the factor, matching rate == 0)
    sync_base: float  # 1 - λ_SL
    upper_bound: float  # realized IV can never exceed this


@dataclass(slots=True)
class _CompiledQuery:
    """All of one query's candidates plus pruning metadata."""

    arrival: float
    candidates: list[_CompiledPlan]
    suffix_bounds: list[float]  # suffix maxima of candidate upper bounds
    sites: tuple[int, ...]  # union of candidate sites — the choice's inputs
    latest_completion: float  # slowest candidate's uncontended completion


class _TrieNode:
    """State after executing one query-id prefix."""

    __slots__ = ("children", "free_at", "assignment", "total_iv")

    def __init__(
        self,
        free_at: dict[int, float],
        assignment: Assignment | None,
        total_iv: float,
    ) -> None:
        self.children: dict[int, _TrieNode] = {}
        self.free_at = free_at
        self.assignment = assignment
        self.total_iv = total_iv


class WorkloadEvaluator:
    """Scores execution orders of a workload deterministically."""

    def __init__(
        self,
        catalog: Catalog,
        cost_provider: CostProvider,
        default_rates: DiscountRates,
        workload: "Workload",
        max_candidates: int = 64,
        fast_path: bool = True,
        max_prefix_entries: int = 65_536,
        availability: "AvailabilityView | None" = None,
    ) -> None:
        if max_candidates < 1:
            raise OptimizationError("max_candidates must be >= 1")
        if max_prefix_entries < 0:
            raise OptimizationError("max_prefix_entries must be >= 0")
        self.catalog = catalog
        self.cost_provider = cost_provider
        self.default_rates = default_rates
        self.workload = workload
        #: Scheduled-fault view: candidate enumeration avoids down sites
        #: and unreliable sync points, and compiled candidates whose remote
        #: legs land on a down site are filtered (never to empty — a query
        #: whose only plans touch down sites keeps them as a last resort).
        self.availability = availability
        self.max_candidates = max_candidates
        self.fast_path = fast_path
        self.max_prefix_entries = max_prefix_entries
        self.stats = EvaluatorStats()
        self._candidates: dict[int, list[QueryPlan]] = {}
        self._compiled: dict[int, _CompiledQuery] = {}
        self._timelines: dict[str, _CompiledTimeline] = {}
        self._trie = _TrieNode({}, None, 0.0)
        #: Server availabilities every evaluation starts from; committed
        #: mid-stream state after :meth:`rebase` (empty for batch use).
        self._base_free_at: dict[int, float] = {}
        # (query_id, clocks of that query's candidate sites) → choice.
        # _choose_fast is a pure function of exactly those inputs, so the
        # memo is exact; bounded by the same cap as the trie.
        self._choices: dict[
            tuple, tuple[Assignment, float, _CompiledPlan]
        ] = {}
        # Serializes evaluation so a thread-pool GA executor cannot race
        # on the trie, the compiled caches, or lazy schedule extension.
        self._lock = threading.RLock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_lock"]  # locks are not picklable; workers get their own
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._lock = threading.RLock()

    # -- candidate plans ---------------------------------------------------

    def rates_for(self, query: "DSSQuery") -> DiscountRates:
        """Per-query rates if set, otherwise the system default."""
        return query.rates if query.rates is not None else self.default_rates

    def candidates(self, query: "DSSQuery") -> list[QueryPlan]:
        """Cached candidate plans for one query (gather combos + delays).

        Two silent caps apply and are recorded in :attr:`stats`: the
        lookahead horizon is clamped to 24 hours (``horizon_capped``), and
        plans beyond ``max_candidates`` are cut after the estimated-IV sort
        (``candidate_plans_dropped``).
        """
        cached = self._candidates.get(query.query_id)
        if cached is not None:
            return cached
        with self._lock:
            cached = self._candidates.get(query.query_id)
            if cached is not None:
                return cached
            arrival = self.workload.arrival_of(query.query_id)
            rates = self.rates_for(query)
            all_base_cost = self.cost_provider.combo_cost(
                query, frozenset(query.tables)
            )
            incumbent = information_value(
                query.business_value,
                all_base_cost.total,
                all_base_cost.total,
                rates,
            )
            tolerable = max_tolerable_latency(
                query.business_value, incumbent, rates.computational
            )
            if tolerable > CANDIDATE_HORIZON_CAP:
                self.stats.horizon_capped += 1
                tolerable = CANDIDATE_HORIZON_CAP
            horizon = arrival + tolerable
            with PROFILER.scope("evaluator.enumerate"):
                plans = enumerate_plans(
                    query, self.catalog, self.cost_provider, rates,
                    submitted_at=arrival, horizon=horizon, exhaustive=False,
                    availability=self.availability,
                )
            if self.availability is not None:
                available = [
                    plan
                    for plan in plans
                    if not any(
                        self.availability.is_site_down(site, plan.start_time)
                        for site in plan.cost.remote_sites
                    )
                ]
                if available:
                    self.stats.candidates_unavailable += len(plans) - len(
                        available
                    )
                    plans = available
            plans.sort(key=lambda plan: plan.information_value, reverse=True)
            dropped = len(plans) - self.max_candidates
            if dropped > 0:
                self.stats.candidate_plans_dropped += dropped
            plans = plans[: self.max_candidates]
            self._candidates[query.query_id] = plans
            return plans

    # -- plan compilation --------------------------------------------------

    def _timeline(self, table: str, covered: float) -> _CompiledTimeline:
        timeline = self._timelines.get(table)
        if timeline is None:
            replica = self.catalog.replica(table)
            assert replica is not None  # REPLICA versions imply a replica
            timeline = _CompiledTimeline(replica, covered)
            self._timelines[table] = timeline
        return timeline

    def _compile_plan(self, plan: QueryPlan, arrival: float) -> _CompiledPlan:
        cost = plan.cost
        sites = (LOCAL_SITE_ID, *cost.remote_sites)
        commit_legs = (
            (LOCAL_SITE_ID, cost.processing),
            *((site, cost.leg_minutes(site)) for site in cost.remote_sites),
        )
        # Cover the timeline through the earliest possible begin plus slack;
        # contention pushing begin further is handled by the coverage guard.
        earliest_begin = max(plan.start_time, arrival)
        timelines = tuple(
            self._timeline(v.table, earliest_begin + _TIMELINE_SLACK)
            for v in plan.versions
            if v.kind is VersionKind.REPLICA
        )
        has_base = len(timelines) < len(plan.versions)
        rates = plan.rates
        # Realized CL ≥ earliest_begin - arrival + total.  The data
        # timestamp is ≤ begin — except for a pure-replica plan whose
        # replicas carry an initial timestamp in the future of begin — so
        # SL ≥ total with that one correction.  Together these bound
        # realized IV for any server availability; _BOUND_SLACK absorbs
        # pow()'s ~1 ulp error so pruning can never flip a comparison.
        total = cost.processing + cost.transmission
        min_cl = earliest_begin - arrival + total
        min_sl = total
        if timelines and not has_base:
            initial_max = max(t.initial for t in timelines)
            if initial_max > earliest_begin:
                min_sl = max(0.0, earliest_begin + total - initial_max)
        upper = information_value(
            plan.query.business_value, min_cl, min_sl, rates
        ) * _BOUND_SLACK
        return _CompiledPlan(
            plan=plan,
            start_time=plan.start_time,
            earliest_begin=earliest_begin,
            processing=cost.processing,
            transmission=cost.transmission,
            sites=sites,
            commit_legs=commit_legs,
            timelines=timelines,
            has_base=has_base,
            business_value=plan.query.business_value,
            comp_base=(1.0 - rates.computational) if rates.computational else 0.0,
            sync_base=(1.0 - rates.synchronization) if rates.synchronization else 0.0,
            upper_bound=upper,
        )

    def _compiled_query(self, query_id: int) -> _CompiledQuery:
        compiled = self._compiled.get(query_id)
        if compiled is not None:
            return compiled
        query = self.workload.query(query_id)
        arrival = self.workload.arrival_of(query_id)
        plans = self.candidates(query)
        candidates = [self._compile_plan(plan, arrival) for plan in plans]
        suffix_bounds = [0.0] * len(candidates)
        running = float("-inf")
        for index in range(len(candidates) - 1, -1, -1):
            running = max(running, candidates[index].upper_bound)
            suffix_bounds[index] = running
        site_union: set[int] = set()
        for candidate in candidates:
            site_union.update(candidate.sites)
        compiled = _CompiledQuery(
            arrival=arrival,
            candidates=candidates,
            suffix_bounds=suffix_bounds,
            sites=tuple(sorted(site_union)),
            latest_completion=max(
                plan.completion_time for plan in plans
            ),
        )
        self._compiled[query_id] = compiled
        return compiled

    def range_of(self, query_id: int) -> tuple[float, float]:
        """The query's half-open execution range ``[arrival, latest)``.

        ``latest`` is the completion time of the query's slowest candidate
        plan.  Candidate plan sets are immutable per query, and neither
        endpoint reads committed server state, so the range is computed
        once per query and cached for the evaluator's lifetime —
        :meth:`rebase` deliberately does *not* invalidate it (regression
        ``tests/test_mqo_online.py::TestRangeCache``).  Before this cache
        the online scheduler re-derived every pending query's candidates
        on every window pass.
        """
        compiled = self._compiled_query(query_id)
        return compiled.arrival, compiled.latest_completion

    def upper_bound(self, query_id: int) -> float:
        """Largest IV any candidate of this query can ever realize.

        The bound holds for *any* server availability (see
        :meth:`_compile_plan`), which makes it safe for admission control:
        a query whose bound is already below the floor can be shed without
        realizing a single plan.
        """
        compiled = self._compiled_query(query_id)
        if not compiled.suffix_bounds:  # pragma: no cover - never empty
            return 0.0
        return compiled.suffix_bounds[0]

    def rebase(self, free_at: dict[int, float]) -> None:
        """Re-root evaluation on committed mid-stream server state.

        After this call every evaluation — fast path and naive alike —
        starts from ``free_at`` instead of idle servers, so GA fitness
        scores candidate orders *given what has already been dispatched*.
        The prefix trie is rebuilt (its cached prefixes assumed the old
        base); the choice memo survives because it is keyed on the exact
        site clocks it was computed under.

        Rebasing onto the base already in force is a no-op: cached
        prefixes are a pure function of the base, the immutable candidate
        sets and the sync timelines, so they stay exact — clearing them
        would only cost the next pass its warm trie (regression
        ``tests/test_mqo_online.py::TestHotPathFixes``).
        """
        with self._lock:
            if free_at == self._base_free_at:
                return
            self._base_free_at = dict(free_at)
            self._trie = _TrieNode(dict(free_at), None, 0.0)
            self.stats.trie_entries = 0

    # -- schedule replay ---------------------------------------------------

    def _realize(
        self,
        plan: QueryPlan,
        arrival: float,
        free_at: dict[int, float],
    ) -> Assignment:
        involved = [LOCAL_SITE_ID, *plan.cost.remote_sites]
        begin = max(
            plan.start_time,
            arrival,
            *(free_at.get(site, 0.0) for site in involved),
        )
        completed = begin + plan.cost.processing + plan.cost.transmission
        freshness = []
        for version in plan.versions:
            if version.kind is VersionKind.BASE:
                freshness.append(begin)
            else:
                replica = self.catalog.replica(version.table)
                freshness.append(replica.freshness_at(begin))
        return Assignment(
            query=plan.query,
            plan=plan,
            arrival=arrival,
            begin=begin,
            completed=completed,
            data_timestamp=min(freshness),
        )

    def _commit(self, assignment: Assignment, free_at: dict[int, float]) -> None:
        busy_until = assignment.begin + assignment.plan.cost.processing
        free_at[LOCAL_SITE_ID] = max(free_at.get(LOCAL_SITE_ID, 0.0), busy_until)
        for site in assignment.plan.cost.remote_sites:
            leg_end = assignment.begin + assignment.plan.cost.leg_minutes(site)
            free_at[site] = max(free_at.get(site, 0.0), leg_end)

    def _choose_fast(
        self, compiled: _CompiledQuery, free_at: dict[int, float]
    ) -> tuple[Assignment, float, "_CompiledPlan"]:
        """IV-best candidate under current availability, compiled arithmetic only."""
        stats = self.stats
        arrival = compiled.arrival
        candidates = compiled.candidates
        suffix_bounds = compiled.suffix_bounds
        best: _CompiledPlan | None = None
        best_iv = float("-inf")
        best_begin = best_completed = best_stamp = 0.0
        realized = 0
        pruned = 0
        free_get = free_at.get
        local_clock = free_get(LOCAL_SITE_ID, 0.0)
        for index, candidate in enumerate(candidates):
            if suffix_bounds[index] < best_iv:
                pruned += len(candidates) - index
                break
            bound = candidate.upper_bound
            if bound < best_iv:
                pruned += 1
                continue
            # Every candidate runs through the local server, so begin is at
            # least the local clock; decaying the static bound by the extra
            # wait keeps it valid under contention and far tighter.
            delay = local_clock - candidate.earliest_begin
            if delay > 0.0 and candidate.comp_base:
                bound *= candidate.comp_base**delay * _BOUND_SLACK
                if bound < best_iv:
                    pruned += 1
                    continue
            begin = candidate.start_time
            if arrival > begin:
                begin = arrival
            for site in candidate.sites:
                busy = free_get(site, 0.0)
                if busy > begin:
                    begin = busy
            # Same association order as the naive path: (begin + P) + T.
            completed = begin + candidate.processing + candidate.transmission
            timelines = candidate.timelines
            if timelines:
                stamp = min(t.freshness(begin) for t in timelines)
                if candidate.has_base and begin < stamp:
                    stamp = begin
            else:
                stamp = begin
            # Identical arithmetic to information_value()/discount_factor():
            # bv * (1-λc)**CL * (1-λs)**SL with rate-zero factors elided.
            iv = candidate.business_value
            if candidate.comp_base:
                iv *= candidate.comp_base ** (completed - arrival)
            if candidate.sync_base:
                sync_latency = completed - stamp
                if sync_latency < 0.0:
                    sync_latency = 0.0
                iv *= candidate.sync_base ** sync_latency
            realized += 1
            if iv > best_iv:
                best = candidate
                best_iv = iv
                best_begin = begin
                best_completed = completed
                best_stamp = stamp
        stats.realize_calls += realized
        stats.candidates_pruned += pruned
        if best is None:  # pragma: no cover - candidates never empty
            raise OptimizationError("no candidate plans survived realization")
        assignment = Assignment(
            query=best.plan.query,
            plan=best.plan,
            arrival=arrival,
            begin=best_begin,
            completed=best_completed,
            data_timestamp=best_stamp,
        )
        return assignment, best_iv, best

    def choose_best(
        self, query_id: int, free_at: dict[int, float]
    ) -> Assignment:
        """IV-best assignment for one query under ``free_at``.

        The single-query building block of :meth:`evaluate_sequence`,
        exposed for the online dispatcher: compiled-candidate arithmetic
        with upper-bound pruning, served from the choice memo when the
        query's site clocks match an earlier decision.  Bit-identical to
        realizing every candidate with :meth:`_realize` and keeping the
        first strict IV maximum — the naive loop the dispatcher ran per
        event before this path (``tests/test_mqo_online.py::
        TestHotPathFixes``).  ``free_at`` is read, never written; it is
        the caller's job to :meth:`_commit` the returned assignment.
        """
        with self._lock:
            compiled = self._compiled_query(query_id)
            self.stats.naive_realize_calls += len(compiled.candidates)
            if not self.fast_path:
                arrival = compiled.arrival
                best: Assignment | None = None
                for candidate in compiled.candidates:
                    assignment = self._realize(
                        candidate.plan, arrival, free_at
                    )
                    if best is None or (
                        assignment.information_value
                        > best.information_value
                    ):
                        best = assignment
                assert best is not None  # candidates never empty
                return best
            free_get = free_at.get
            key = (
                query_id,
                *(free_get(site, 0.0) for site in compiled.sites),
            )
            memo = self._choices.get(key)
            if memo is not None:
                self.stats.choice_hits += 1
                return memo[0]
            assignment, best_iv, chosen = self._choose_fast(
                compiled, free_at
            )
            if len(self._choices) >= self.max_prefix_entries > 0:
                self._choices.clear()
                self.stats.choice_evictions += 1
            self._choices[key] = (assignment, best_iv, chosen)
            return assignment

    # -- prefix trie -------------------------------------------------------

    def _trie_store(
        self,
        node: _TrieNode,
        query_id: int,
        free_at: dict[int, float],
        assignment: Assignment,
        total_iv: float,
    ) -> _TrieNode:
        if self.max_prefix_entries == 0:
            return node
        if self.stats.trie_entries >= self.max_prefix_entries:
            # Generational clear: bounded memory beats a perfect LRU here —
            # the GA repopulates the hot prefixes within one generation.
            self._trie = _TrieNode({}, None, 0.0)
            self.stats.trie_entries = 0
            self.stats.trie_evictions += 1
            return self._trie_attach_orphan(query_id, free_at, assignment, total_iv)
        child = _TrieNode(dict(free_at), assignment, total_iv)
        node.children[query_id] = child
        self.stats.trie_entries += 1
        return child

    def _trie_attach_orphan(
        self,
        query_id: int,
        free_at: dict[int, float],
        assignment: Assignment,
        total_iv: float,
    ) -> _TrieNode:
        """After a clear mid-evaluation, keep caching from a detached node.

        The orphan chain is not reachable from the new root (its prefix
        context was evicted), so it only serves the remainder of the
        current evaluation and is garbage-collected afterwards.
        """
        return _TrieNode(dict(free_at), assignment, total_iv)

    # -- evaluation entry points -------------------------------------------

    @profiled("evaluator.realize")
    def evaluate_sequence(self, order: "Sequence[int]") -> EvaluationResult:
        """Realize an arbitrary sequence of distinct workload query ids.

        This is the fast path: resume from the longest trie-cached prefix,
        then realize remaining positions with compiled candidates.  Results
        are bit-identical to :meth:`evaluate_naive` on the same sequence.
        """
        if len(set(order)) != len(order):
            raise OptimizationError("sequence must not repeat query ids")
        with self._lock:
            stats = self.stats
            stats.evaluations += 1
            node = self._trie
            assignments: list[Assignment] = []
            depth = 0
            for query_id in order:
                child = node.children.get(query_id)
                if child is None:
                    break
                node = child
                assignments.append(node.assignment)
                depth += 1
            if depth:
                stats.prefix_hits += 1
                stats.prefix_queries_skipped += depth
                for query_id in order[:depth]:
                    stats.naive_realize_calls += len(
                        self._compiled_query(query_id).candidates
                    )
            stats.resume_depths[depth] = stats.resume_depths.get(depth, 0) + 1
            free_at = dict(node.free_at)
            total_iv = node.total_iv
            choices = self._choices
            for position in range(depth, len(order)):
                query_id = order[position]
                compiled = self._compiled_query(query_id)
                stats.naive_realize_calls += len(compiled.candidates)
                free_get = free_at.get
                key = (
                    query_id,
                    *(free_get(site, 0.0) for site in compiled.sites),
                )
                memo = choices.get(key)
                if memo is not None:
                    stats.choice_hits += 1
                    assignment, best_iv, chosen = memo
                else:
                    assignment, best_iv, chosen = self._choose_fast(
                        compiled, free_at
                    )
                    if len(choices) >= self.max_prefix_entries > 0:
                        choices.clear()
                        stats.choice_evictions += 1
                    choices[key] = (assignment, best_iv, chosen)
                begin = assignment.begin
                for site, minutes in chosen.commit_legs:
                    busy_until = begin + minutes
                    if busy_until > free_at.get(site, 0.0):
                        free_at[site] = busy_until
                total_iv += best_iv
                assignments.append(assignment)
                node = self._trie_store(
                    node, query_id, free_at, assignment, total_iv
                )
            return EvaluationResult(assignments=assignments)

    def evaluate(self, permutation: list[int]) -> EvaluationResult:
        """Realize a permutation of query ids, greedily re-planning each.

        Queries run in the given order; each picks its IV-best candidate
        plan given current server availabilities, then occupies servers.
        """
        expected = {query.query_id for query in self.workload.queries}
        if set(permutation) != expected or len(permutation) != len(expected):
            raise OptimizationError(
                "permutation must contain each workload query id exactly once"
            )
        if self.fast_path:
            return self.evaluate_sequence(permutation)
        return self.evaluate_naive(permutation)

    @profiled("evaluator.realize.naive")
    def evaluate_naive(self, order: "Sequence[int]") -> EvaluationResult:
        """Reference implementation: replay from scratch, no caches.

        Retained as the equivalence oracle for the fast path (property
        tests and ``benchmarks/test_mqo_perf.py`` assert bit-identical
        assignments and totals).  Accepts any distinct-id sequence, like
        :meth:`evaluate_sequence`.
        """
        if len(set(order)) != len(order):
            raise OptimizationError("sequence must not repeat query ids")
        free_at: dict[int, float] = dict(self._base_free_at)
        result = EvaluationResult()
        for query_id in order:
            query = self.workload.query(query_id)
            arrival = self.workload.arrival_of(query_id)
            best: Assignment | None = None
            for plan in self.candidates(query):
                assignment = self._realize(plan, arrival, free_at)
                if best is None or (
                    assignment.information_value > best.information_value
                ):
                    best = assignment
            if best is None:  # pragma: no cover - candidates never empty
                raise OptimizationError(f"no candidate plans for {query.name!r}")
            self._commit(best, free_at)
            result.assignments.append(best)
        return result

    def fitness(self, permutation: list[int]) -> float:
        """GA fitness: the permutation's total realized information value."""
        return self.evaluate(permutation).total_information_value

    def sequence_fitness(self, order: "Sequence[int]") -> float:
        """Fitness of a partial order (e.g. one conflict group's permutation)."""
        return self.evaluate_sequence(order).total_information_value
