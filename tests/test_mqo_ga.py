"""Unit and property tests: chromosomes and the genetic algorithm."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OptimizationError
from repro.mqo.chromosome import (
    order_crossover,
    random_permutation,
    swap_mutation,
    validate_permutation,
)
from repro.mqo.ga import GAConfig, GeneticAlgorithm
from repro.sim.rng import RandomSource


class TestChromosome:
    def test_validate_rejects_duplicates(self):
        with pytest.raises(OptimizationError):
            validate_permutation([1, 2, 2])

    def test_random_permutation_preserves_genes(self, rng):
        genes = list(range(10))
        shuffled = random_permutation(genes, rng)
        assert sorted(shuffled) == genes

    def test_crossover_produces_valid_permutation(self, rng):
        parent_a = list(range(8))
        parent_b = list(reversed(range(8)))
        child = order_crossover(parent_a, parent_b, rng)
        assert sorted(child) == parent_a

    def test_crossover_requires_same_genes(self, rng):
        with pytest.raises(OptimizationError):
            order_crossover([1, 2], [1, 3], rng)

    def test_crossover_single_gene(self, rng):
        assert order_crossover([5], [5], rng) == [5]

    def test_mutation_swaps_exactly_two(self, rng):
        genes = list(range(10))
        mutated = swap_mutation(genes, rng)
        assert sorted(mutated) == genes
        differences = sum(1 for a, b in zip(genes, mutated) if a != b)
        assert differences == 2

    def test_mutation_of_single_gene_is_identity(self, rng):
        assert swap_mutation([3], rng) == [3]


@settings(max_examples=100, deadline=None)
@given(
    genes=st.lists(st.integers(), min_size=2, max_size=20, unique=True),
    seed=st.integers(min_value=0, max_value=2**32),
)
def test_crossover_always_yields_permutation(genes, seed):
    rng = RandomSource(seed, "prop")
    parent_a = random_permutation(genes, rng)
    parent_b = random_permutation(genes, rng)
    child = order_crossover(parent_a, parent_b, rng)
    assert sorted(child) == sorted(genes)


@settings(max_examples=100, deadline=None)
@given(
    genes=st.lists(st.integers(), min_size=2, max_size=20, unique=True),
    seed=st.integers(min_value=0, max_value=2**32),
)
def test_mutation_always_yields_permutation(genes, seed):
    rng = RandomSource(seed, "prop")
    mutated = swap_mutation(genes, rng)
    assert sorted(mutated) == sorted(genes)


class TestGAConfig:
    def test_validation(self):
        with pytest.raises(OptimizationError):
            GAConfig(population_size=1)
        with pytest.raises(OptimizationError):
            GAConfig(generations=0)
        with pytest.raises(OptimizationError):
            GAConfig(parent_fraction=0.0)
        with pytest.raises(OptimizationError):
            GAConfig(mutation_rate=1.5)
        with pytest.raises(OptimizationError):
            GAConfig(elitism=32, population_size=32)

    def test_paper_default_is_50_generations(self):
        assert GAConfig().generations == 50


class TestGeneticAlgorithm:
    def test_finds_identity_on_sortedness_fitness(self):
        genes = list(range(8))

        def fitness(permutation: list[int]) -> float:
            return -sum(
                abs(value - index) for index, value in enumerate(permutation)
            )

        ga = GeneticAlgorithm(genes, fitness, GAConfig(generations=60), seed=3)
        result = ga.run()
        assert result.best == genes
        assert result.best_fitness == 0.0

    def test_history_is_monotone_nondecreasing(self):
        genes = list(range(6))
        ga = GeneticAlgorithm(
            genes, lambda p: float(p[0]), GAConfig(generations=20), seed=1
        )
        result = ga.run()
        assert all(
            b >= a for a, b in zip(result.history, result.history[1:])
        )

    def test_seed_chromosome_floors_the_result(self):
        genes = list(range(10))
        optimal = list(range(10))

        def fitness(permutation: list[int]) -> float:
            return 1.0 if permutation == optimal else 0.0

        ga = GeneticAlgorithm(genes, fitness, GAConfig(generations=2), seed=5)
        result = ga.run(seed_chromosomes=[optimal])
        assert result.best_fitness == 1.0

    def test_reproducible_given_seed(self):
        genes = list(range(7))

        def fitness(permutation: list[int]) -> float:
            return float(permutation[0] * 3 + permutation[-1])

        a = GeneticAlgorithm(genes, fitness, seed=9).run()
        b = GeneticAlgorithm(genes, fitness, seed=9).run()
        assert a.best == b.best
        assert a.best_fitness == b.best_fitness

    def test_fitness_cache_limits_evaluations(self):
        genes = [0, 1]  # only two permutations exist
        calls = []

        def fitness(permutation: list[int]) -> float:
            calls.append(tuple(permutation))
            return float(permutation[0])

        GeneticAlgorithm(genes, fitness, GAConfig(generations=10), seed=2).run()
        assert len(set(calls)) <= 2
        assert len(calls) <= 2

    def test_requires_genes(self):
        with pytest.raises(OptimizationError):
            GeneticAlgorithm([], lambda p: 0.0)


def _picklable_fitness(permutation: list[int]) -> float:
    """Module-level so a process-pool executor can pickle it."""
    return float(permutation[0] * 7 + permutation[-1] * 3)


class TestExecutors:
    def _run(self, executor: str, **config_kwargs):
        genes = list(range(9))
        config = GAConfig(
            generations=12, executor=executor, **config_kwargs
        )
        ga = GeneticAlgorithm(genes, _picklable_fitness, config, seed=4)
        return ga.run()

    def test_thread_executor_is_bit_identical_to_serial(self):
        serial = self._run("serial")
        threaded = self._run("thread", max_workers=4)
        assert threaded.best == serial.best
        assert threaded.best_fitness == serial.best_fitness
        assert threaded.history == serial.history
        assert threaded.fitness_calls == serial.fitness_calls
        assert threaded.cache_hits == serial.cache_hits

    def test_process_executor_is_bit_identical_to_serial(self):
        serial = self._run("serial")
        processed = self._run("process", max_workers=2)
        assert processed.best == serial.best
        assert processed.best_fitness == serial.best_fitness
        assert processed.history == serial.history
        assert processed.fitness_calls == serial.fitness_calls

    def test_invalid_executor_rejected(self):
        with pytest.raises(OptimizationError):
            GAConfig(executor="cluster")

    def test_invalid_max_workers_rejected(self):
        with pytest.raises(OptimizationError):
            GAConfig(max_workers=0)


class TestScoringCounters:
    def test_fitness_calls_and_cache_hits_partition_scorings(self):
        genes = [0, 1, 2]
        calls = []

        def fitness(permutation: list[int]) -> float:
            calls.append(tuple(permutation))
            return float(permutation[0])

        result = GeneticAlgorithm(
            genes, fitness, GAConfig(generations=10), seed=2
        ).run()
        # Every real invocation is a fitness call; each distinct chromosome
        # is scored at most once.
        assert result.fitness_calls == len(calls)
        assert len(set(calls)) == len(calls)
        assert result.cache_hits > 0  # 3! = 6 permutations, many repeats

    def test_evaluations_alias_is_deprecated(self):
        genes = [0, 1]
        result = GeneticAlgorithm(
            genes, lambda p: float(p[0]), GAConfig(generations=2), seed=1
        ).run()
        with pytest.warns(DeprecationWarning, match="fitness_calls"):
            assert result.evaluations == result.fitness_calls
