"""Write ``BENCH_scale.json`` — the EXT5 sharded scale-sweep snapshot.

Runs the committed scale sweep (``repro.experiments.scale``): a
10^5-query steady Poisson stream plus burst and pressure schedules,
sharded by conflict group across spawned worker processes, recording
queries/sec, group-formation throughput, p50/p95/p99 window re-opt
latency and peak worker RSS.  Invoked by ``make bench-scale``; the JSON
is the throughput ratchet for ``repro bench-gate`` (``*_per_sec`` leaves
regress when they *drop* past the tolerance).

Usage::

    PYTHONPATH=src python benchmarks/scale_snapshot.py [output.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.experiments.scale import ScaleConfig, run_scale_sweep


def snapshot() -> dict:
    return run_scale_sweep(ScaleConfig())


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("BENCH_scale.json")
    data = snapshot()
    out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out}")
    print(json.dumps(data, indent=2))


if __name__ == "__main__":
    main()
