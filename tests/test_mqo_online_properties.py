"""Property tests: the online MQO scheduler's equivalence and safety.

Two properties anchor the online subsystem:

1. **Batch equivalence** — with admission control disabled (zero IV
   floor, a queue that fits the whole stream, no eager start) and a
   window wide enough to cover every arrival, the rolling-window loop
   collapses to exactly one optimization pass whose GA seeds and seed
   chromosome match the batch scheduler's, so the decision is
   bit-identical to :meth:`WorkloadScheduler.schedule` — permutation,
   per-assignment times and IVs, and totals.
2. **Trace safety under faults** — a traced online run through the full
   federated system, with site outages and sync faults injected, passes
   every :class:`TraceChecker` rule (lifecycle, ledger, fault *and*
   online-admission invariants).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import ivqp_router
from repro.core.value import DiscountRates
from repro.federation.costmodel import CostModel
from repro.federation.executor import ExecutionPolicy
from repro.federation.faults import FaultPlan
from repro.federation.system import SystemConfig, TableSpec, build_system
from repro.mqo.ga import GAConfig
from repro.mqo.online import OnlineConfig, OnlineMQOScheduler
from repro.mqo.scheduler import WorkloadScheduler
from repro.obs import TraceChecker
from repro.workload.query import DSSQuery, Workload

from tests.test_mqo_scheduling import build_catalog

pytestmark = pytest.mark.slow

SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

TABLE_NAMES = [f"t{index}" for index in range(6)]


@st.composite
def streamed_workloads(draw):
    """A randomized workload with arrival times, plus GA seed/config."""
    count = draw(st.integers(min_value=2, max_value=6))
    workload = Workload()
    for index in range(count):
        tables = tuple(draw(st.lists(
            st.sampled_from(TABLE_NAMES),
            min_size=1, max_size=3, unique=True,
        )))
        workload.add(
            DSSQuery(
                query_id=index + 1,
                name=f"q{index + 1}",
                tables=tables,
                business_value=draw(
                    st.floats(min_value=0.5, max_value=4.0, allow_nan=False)
                ),
                base_work=draw(
                    st.floats(
                        min_value=1_000.0, max_value=20_000.0, allow_nan=False
                    )
                ),
            ),
            arrival=draw(
                st.floats(min_value=0.0, max_value=6.0, allow_nan=False)
            ),
        )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    generations = draw(st.integers(min_value=3, max_value=12))
    return workload, seed, generations


class TestBatchEquivalence:
    @SETTINGS
    @given(streamed_workloads())
    def test_wide_window_online_reproduces_batch_exactly(self, drawn):
        workload, seed, generations = drawn
        catalog = build_catalog()
        cost_model = CostModel(catalog)
        rates = DiscountRates.symmetric(0.1)
        ga_config = GAConfig(generations=generations)

        batch = WorkloadScheduler(
            catalog, cost_model, rates, ga_config=ga_config, seed=seed
        ).schedule(workload)

        span = max(workload.arrivals.values()) - min(
            workload.arrivals.values()
        )
        online = OnlineMQOScheduler(
            catalog, cost_model, rates, ga_config=ga_config, seed=seed,
            config=OnlineConfig(
                window=span + 1.0,
                max_pending=len(workload),
                iv_floor=0.0,
                eager_start=False,
            ),
        ).run(workload)

        assert online.permutation == batch.permutation
        assert online.shed == []
        assert (
            online.total_information_value == batch.total_information_value
        )
        batch_assignments = {
            a.query.query_id: a for a in batch.result.assignments
        }
        for assignment in online.result.assignments:
            twin = batch_assignments[assignment.query.query_id]
            assert assignment.begin == twin.begin
            assert assignment.completed == twin.completed
            assert assignment.data_timestamp == twin.data_timestamp
            assert assignment.information_value == twin.information_value


@st.composite
def faulty_online_federations(draw):
    """A faulty federated system config plus a streamed workload."""
    num_tables = draw(st.integers(min_value=2, max_value=4))
    num_sites = draw(st.integers(min_value=1, max_value=3))
    tables = [
        TableSpec(
            name=f"t{index}",
            site=draw(st.integers(min_value=0, max_value=num_sites - 1)),
            row_count=draw(st.integers(min_value=100, max_value=20_000)),
        )
        for index in range(num_tables)
    ]
    config = SystemConfig(
        tables=tables,
        replicated=[spec.name for spec in tables],
        sync_mode=draw(st.sampled_from(["periodic", "shared"])),
        sync_mean_interval=draw(
            st.floats(min_value=0.5, max_value=20.0, allow_nan=False)
        ),
        rates=DiscountRates(0.02, 0.02),
        trace=True,
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )
    site_ids = sorted({spec.site for spec in config.tables})
    config.fault_plan = FaultPlan.generate(
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        horizon=500.0,
        site_ids=site_ids,
        outage_rate=draw(
            st.floats(min_value=0.0, max_value=0.03, allow_nan=False)
        ),
        outage_mean_duration=draw(
            st.floats(min_value=1.0, max_value=10.0, allow_nan=False)
        ),
        sync_skip_prob=draw(
            st.floats(min_value=0.0, max_value=0.2, allow_nan=False)
        ),
        sync_delay_prob=draw(
            st.floats(min_value=0.0, max_value=0.2, allow_nan=False)
        ),
    )
    config.execution_policy = ExecutionPolicy(
        max_retries=draw(st.integers(min_value=1, max_value=3)),
        retry_backoff=0.5,
        failover=True,
    )
    count = draw(st.integers(min_value=1, max_value=5))
    workload = Workload()
    for index in range(count):
        touched = tuple(draw(st.lists(
            st.sampled_from([spec.name for spec in tables]),
            min_size=1, max_size=num_tables, unique=True,
        )))
        workload.add(
            DSSQuery(
                query_id=index + 1, name=f"q{index + 1}", tables=touched
            ),
            arrival=draw(
                st.floats(min_value=0.0, max_value=30.0, allow_nan=False)
            ),
        )
    online_config = OnlineConfig(
        window=draw(st.floats(min_value=1.0, max_value=15.0, allow_nan=False)),
        max_pending=draw(st.integers(min_value=1, max_value=8)),
        iv_floor=0.0,
        eager_start=draw(st.booleans()),
    )
    return config, workload, online_config


class TestTraceSafetyUnderFaults:
    @SETTINGS
    @given(faulty_online_federations())
    def test_traced_online_run_with_faults_passes_checker(self, drawn):
        config, workload, online_config = drawn
        system = build_system(config, ivqp_router)
        system.submit_workload_online(workload, config=online_config)
        system.run()
        assert len(system.outcomes) == system.online.stats.dispatched
        violations = TraceChecker().check(system.tracer.records)
        assert violations == []
