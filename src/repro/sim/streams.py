"""Random variate streams, modelled after JavaSim's ``*Stream`` classes.

The paper simulates query arrivals and replica synchronization with
JavaSim's ``ExponentialStream``.  This module provides that class and the
rest of the family (uniform, normal, Erlang, hyper-exponential, deterministic
and empirical streams) on top of :class:`repro.sim.rng.RandomSource`.

All streams return **non-negative** inter-event times; streams whose
distribution has support below zero (normal) truncate at zero.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from collections.abc import Sequence

from repro.errors import ConfigError
from repro.sim.rng import RandomSource

__all__ = [
    "RandomStream",
    "ExponentialStream",
    "UniformStream",
    "NormalStream",
    "ErlangStream",
    "HyperExponentialStream",
    "DeterministicStream",
    "EmpiricalStream",
]


class RandomStream(ABC):
    """A stream of random variates with a known mean."""

    def __init__(self, source: RandomSource) -> None:
        self._source = source
        self._count = 0

    @abstractmethod
    def sample(self) -> float:
        """Draw the next variate from the stream."""

    @property
    @abstractmethod
    def mean(self) -> float:
        """The theoretical mean of the stream."""

    @property
    def count(self) -> int:
        """How many variates have been drawn so far."""
        return self._count

    def _tick(self) -> None:
        self._count += 1

    def __iter__(self):
        while True:
            yield self.sample()


class ExponentialStream(RandomStream):
    """Exponentially distributed stream with the given ``mean``.

    This mirrors JavaSim's ``ExponentialStream(mean)`` used by the paper to
    drive both the query arrival process and the synchronization process.
    """

    def __init__(self, mean: float, source: RandomSource) -> None:
        if mean <= 0:
            raise ConfigError(f"ExponentialStream mean must be > 0, got {mean}")
        super().__init__(source)
        self._mean = float(mean)

    @property
    def mean(self) -> float:
        return self._mean

    def sample(self) -> float:
        self._tick()
        return self._source.expovariate(1.0 / self._mean)


class UniformStream(RandomStream):
    """Uniform stream over ``[low, high]``."""

    def __init__(self, low: float, high: float, source: RandomSource) -> None:
        if high < low:
            raise ConfigError(f"UniformStream needs low <= high, got [{low}, {high}]")
        if low < 0:
            raise ConfigError("UniformStream bounds must be non-negative")
        super().__init__(source)
        self.low = float(low)
        self.high = float(high)

    @property
    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def sample(self) -> float:
        self._tick()
        return self._source.uniform(self.low, self.high)


class NormalStream(RandomStream):
    """Normal stream truncated at zero (resampled until non-negative)."""

    def __init__(self, mean: float, stddev: float, source: RandomSource) -> None:
        if stddev < 0:
            raise ConfigError("NormalStream stddev must be >= 0")
        super().__init__(source)
        self._mu = float(mean)
        self._sigma = float(stddev)

    @property
    def mean(self) -> float:
        return self._mu

    def sample(self) -> float:
        self._tick()
        for _ in range(1000):
            value = self._source.gauss(self._mu, self._sigma)
            if value >= 0:
                return value
        # Pathological parameterisations (mean far below zero) fall back to 0.
        return 0.0


class ErlangStream(RandomStream):
    """Erlang-k stream: the sum of ``k`` exponential stages."""

    def __init__(self, mean: float, k: int, source: RandomSource) -> None:
        if mean <= 0:
            raise ConfigError("ErlangStream mean must be > 0")
        if k < 1:
            raise ConfigError("ErlangStream needs k >= 1")
        super().__init__(source)
        self._mean = float(mean)
        self.k = int(k)

    @property
    def mean(self) -> float:
        return self._mean

    def sample(self) -> float:
        self._tick()
        stage_rate = self.k / self._mean
        return sum(self._source.expovariate(stage_rate) for _ in range(self.k))


class HyperExponentialStream(RandomStream):
    """Two-phase hyper-exponential stream (high-variance arrivals)."""

    def __init__(
        self,
        mean_a: float,
        mean_b: float,
        prob_a: float,
        source: RandomSource,
    ) -> None:
        if mean_a <= 0 or mean_b <= 0:
            raise ConfigError("HyperExponentialStream means must be > 0")
        if not 0.0 <= prob_a <= 1.0:
            raise ConfigError("HyperExponentialStream prob_a must be in [0, 1]")
        super().__init__(source)
        self.mean_a = float(mean_a)
        self.mean_b = float(mean_b)
        self.prob_a = float(prob_a)

    @property
    def mean(self) -> float:
        return self.prob_a * self.mean_a + (1.0 - self.prob_a) * self.mean_b

    def sample(self) -> float:
        self._tick()
        if self._source.uniform(0.0, 1.0) < self.prob_a:
            return self._source.expovariate(1.0 / self.mean_a)
        return self._source.expovariate(1.0 / self.mean_b)


class DeterministicStream(RandomStream):
    """A stream that always returns the same value (periodic schedules)."""

    def __init__(self, value: float, source: RandomSource | None = None) -> None:
        if value < 0:
            raise ConfigError("DeterministicStream value must be >= 0")
        super().__init__(source or RandomSource(0, "deterministic"))
        self._value = float(value)

    @property
    def mean(self) -> float:
        return self._value

    def sample(self) -> float:
        self._tick()
        return self._value


class EmpiricalStream(RandomStream):
    """Draws uniformly (with replacement) from an observed sample."""

    def __init__(self, values: Sequence[float], source: RandomSource) -> None:
        if not values:
            raise ConfigError("EmpiricalStream needs at least one value")
        if any(v < 0 for v in values):
            raise ConfigError("EmpiricalStream values must be non-negative")
        super().__init__(source)
        self._values = [float(v) for v in values]

    @property
    def mean(self) -> float:
        return math.fsum(self._values) / len(self._values)

    def sample(self) -> float:
        self._tick()
        return self._source.choice(self._values)
