"""Unit tests: query plans, candidate enumeration, dominance pruning."""

from __future__ import annotations

import pytest

from repro.core.enumeration import (
    all_combos,
    enumerate_plans,
    gather_combos,
    make_plan,
    split_tables,
    sync_points_between,
)
from repro.core.plan import TableVersion, VersionKind
from repro.errors import PlanError
from repro.federation.costmodel import ComboCost
from repro.workload.query import DSSQuery


class TestTableVersion:
    def test_negative_freshness_rejected(self):
        with pytest.raises(PlanError):
            TableVersion("t", VersionKind.BASE, -1.0)


class TestQueryPlanInvariants:
    def make(self, fig4_world, remote, start=11.0, submitted=11.0):
        catalog, provider, query, rates = fig4_world
        return make_plan(
            query, catalog, provider, rates, submitted, start, frozenset(remote)
        )

    def test_plan_covers_exactly_query_tables(self, fig4_world):
        plan = self.make(fig4_world, {"T1", "T2", "T3", "T4"})
        assert {v.table for v in plan.versions} == {"T1", "T2", "T3", "T4"}

    def test_remote_and_replica_partition(self, fig4_world):
        plan = self.make(fig4_world, {"T1"})
        assert plan.remote_tables == frozenset({"T1"})
        assert plan.replica_tables == frozenset({"T2", "T3", "T4"})

    def test_base_version_freshness_is_start_time(self, fig4_world):
        plan = self.make(fig4_world, {"T1", "T2", "T3", "T4"}, start=11.0)
        assert all(v.freshness == 11.0 for v in plan.versions)
        # SL == CL for an immediate all-base plan (paper Section 2).
        assert plan.synchronization_latency == pytest.approx(
            plan.computational_latency
        )

    def test_replica_version_uses_last_sync(self, fig4_world):
        plan = self.make(fig4_world, set())
        by_table = {v.table: v.freshness for v in plan.versions}
        assert by_table == {"T1": 4.0, "T2": 6.0, "T3": 8.0, "T4": 2.0}

    def test_oldest_freshness_decides_sl(self, fig4_world):
        plan = self.make(fig4_world, set())
        assert plan.oldest_freshness == 2.0  # T4's replica
        assert plan.synchronization_latency == pytest.approx(
            plan.completion_time - 2.0
        )

    def test_delay_increases_cl(self, fig4_world):
        immediate = self.make(fig4_world, set(), start=11.0)
        delayed = self.make(fig4_world, set(), start=12.0)
        assert delayed.delayed
        assert delayed.computational_latency == pytest.approx(
            immediate.computational_latency + 1.0
        )

    def test_start_before_submission_rejected(self, fig4_world):
        with pytest.raises(PlanError):
            self.make(fig4_world, set(), start=10.0, submitted=11.0)

    def test_describe_mentions_versions(self, fig4_world):
        plan = self.make(fig4_world, {"T1"})
        text = plan.describe()
        assert "T1[T]" in text
        assert "T2[R]" in text


class TestSplitAndCombos:
    def test_split_tables(self, fig4_world):
        catalog, _provider, query, _rates = fig4_world
        replicated, base_only = split_tables(query, catalog)
        assert set(replicated) == {"T1", "T2", "T3", "T4"}
        assert base_only == []

    def test_split_with_unreplicated_table(self, fig4_world):
        catalog, _provider, _query, _rates = fig4_world
        from repro.federation.catalog import TableDef

        catalog.add_table(TableDef("T5", site=0, row_count=10))
        query = DSSQuery(query_id=2, name="mixed", tables=("T1", "T5"))
        replicated, base_only = split_tables(query, catalog)
        assert replicated == ["T1"]
        assert base_only == ["T5"]

    def test_gather_combos_are_stalest_prefixes(self, fig4_world):
        catalog, _provider, query, _rates = fig4_world
        combos = gather_combos(query, catalog, at_time=11.0)
        # Staleness order at t=11: T4(2), T1(4), T2(6), T3(8).
        assert combos == [
            frozenset(),
            frozenset({"T4"}),
            frozenset({"T4", "T1"}),
            frozenset({"T4", "T1", "T2"}),
            frozenset({"T4", "T1", "T2", "T3"}),
        ]

    def test_gather_combos_reorder_after_sync(self, fig4_world):
        catalog, _provider, query, _rates = fig4_world
        # At t=14 freshness is T1:13, T2:14, T3:8, T4:12.5 -> stalest T3.
        combos = gather_combos(query, catalog, at_time=14.0)
        assert combos[1] == frozenset({"T3"})

    def test_all_combos_counts(self, fig4_world):
        catalog, _provider, query, _rates = fig4_world
        assert len(all_combos(query, catalog)) == 2**4

    def test_unreplicated_tables_in_every_combo(self, fig4_world):
        catalog, _provider, _query, _rates = fig4_world
        from repro.federation.catalog import TableDef

        catalog.add_table(TableDef("T9", site=0, row_count=10))
        query = DSSQuery(query_id=3, name="m", tables=("T1", "T9"))
        for combo in all_combos(query, catalog):
            assert "T9" in combo
        for combo in gather_combos(query, catalog, 11.0):
            assert "T9" in combo


class TestSyncPointsAndEnumeration:
    def test_sync_points_window(self, fig4_world):
        catalog, _provider, query, _rates = fig4_world
        points = sync_points_between(query, catalog, 11.0, 16.0)
        assert points == [12.5, 13.0, 14.0, 16.0]

    def test_sync_points_empty_interval(self, fig4_world):
        catalog, _provider, query, _rates = fig4_world
        assert sync_points_between(query, catalog, 16.0, 10.0) == []

    def test_enumerate_plans_deduplicates(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        plans = enumerate_plans(
            query, catalog, provider, rates, 11.0, 16.0, exhaustive=True
        )
        keys = {(plan.start_time, plan.remote_tables) for plan in plans}
        assert len(keys) == len(plans)

    def test_enumerate_includes_immediate_and_delayed(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        plans = enumerate_plans(
            query, catalog, provider, rates, 11.0, 16.0, exhaustive=False
        )
        starts = {plan.start_time for plan in plans}
        assert 11.0 in starts
        assert 12.5 in starts

    def test_missing_replica_read_locally_raises(self, fig4_world):
        catalog, provider, _query, rates = fig4_world
        from repro.federation.catalog import TableDef

        catalog.add_table(TableDef("T7", site=1, row_count=10))
        query = DSSQuery(query_id=5, name="bad", tables=("T7",))
        with pytest.raises(PlanError):
            make_plan(
                query, catalog, provider, rates, 0.0, 0.0, frozenset()
            )


class TestComboCost:
    def test_processing_is_longest_leg_plus_local(self):
        cost = ComboCost(
            site_legs=((0, 3.0), (1, 5.0)), local_minutes=2.0, transmission=0.5
        )
        assert cost.processing == 7.0
        assert cost.total == 7.5
        assert cost.remote_sites == (0, 1)
        assert cost.leg_minutes(1) == 5.0
        assert cost.leg_minutes(9) == 0.0

    def test_rejects_negative_components(self):
        with pytest.raises(Exception):
            ComboCost(site_legs=(), local_minutes=-1.0, transmission=0.0)
