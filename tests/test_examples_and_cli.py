"""Smoke tests: every example runs end-to-end; the CLI dispatches."""

from __future__ import annotations

import pathlib
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"


@pytest.fixture(autouse=True)
def _examples_on_path(monkeypatch):
    monkeypatch.syspath_prepend(str(EXAMPLES_DIR))


def _run_example(name: str, capsys) -> str:
    module = __import__(name)
    try:
        module.main()
    finally:
        sys.modules.pop(name, None)
    return capsys.readouterr().out


class TestExamples:
    def test_quickstart(self, capsys):
        out = _run_example("quickstart", capsys)
        assert "mean information value" in out
        assert "route=" in out

    def test_fraud_detection(self, capsys):
        out = _run_example("fraud_detection", capsys)
        assert "fraud-screen-east" in out
        assert "Figure 1's trade-off" in out

    def test_asset_exposure(self, capsys):
        out = _run_example("asset_exposure", capsys)
        assert "MQO recovered" in out
        assert "VaR report waited" in out

    def test_tpch_reports(self, capsys):
        out = _run_example("tpch_reports", capsys)
        assert "join order" in out
        assert "result rows" in out

    def test_placement_advisor(self, capsys):
        out = _run_example("placement_advisor", capsys)
        assert "advisor 5" in out or "advisor" in out
        assert "expected IV" in out

    def test_logistics_dispatch(self, capsys):
        out = _run_example("logistics_dispatch", capsys)
        assert "QoS audit" in out
        assert "hit rate" in out
        assert "VIOLATED" not in out

    def test_paper_walkthrough(self, capsys):
        out = _run_example("paper_walkthrough", capsys)
        assert "scatter incumbent" in out
        assert "CHOSEN" in out
        assert "report 1 wins" in out
        assert "report 2 wins" in out


class TestCli:
    def test_fig4_runs(self, capsys):
        from repro.experiments.cli import main

        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "scatter_incumbent_iv" in out
        assert "chosen_plan" in out

    def test_fig4_json_format(self, capsys):
        import json

        from repro.experiments.cli import main

        assert main(["fig4", "--format", "json"]) == 0
        out = capsys.readouterr().out
        first = out.split("\n\n")[0]
        payload = json.loads(first)
        assert payload["title"].startswith("Figure 4")

    def test_output_to_file(self, tmp_path, capsys):
        from repro.experiments.cli import main

        target = tmp_path / "fig4.csv"
        assert main(["fig4", "--format", "csv", "--output", str(target)]) == 0
        assert capsys.readouterr().out == ""
        assert "quantity,value" in target.read_text()

    def test_unknown_experiment_rejected(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["figZZ"])

    def test_registry_covers_all_figures(self):
        from repro.experiments.cli import EXPERIMENTS

        assert set(EXPERIMENTS) == {
            "fig4", "fig5", "fig6", "fig7", "fig8", "fig9",
            "ablations", "sensitivity", "load", "faults", "stream-mqo",
            "scale",
        }


@pytest.mark.slow
class TestLiveCli:
    def test_stream_mqo_live_metrics_dashboard(self, capsys):
        from repro.experiments.cli import main

        assert main(["stream-mqo", "--live-metrics"]) == 0
        out = capsys.readouterr().out
        assert "gauges" in out and "quantiles" in out
        assert "alert" in out
        assert "trace-check" in out

    def test_live_metrics_with_profile_and_html(self, tmp_path, capsys):
        from repro.experiments.cli import main

        report = tmp_path / "live.html"
        assert main([
            "stream-mqo", "--live-metrics", "--profile",
            "--html", str(report),
        ]) == 0
        out = capsys.readouterr().out
        assert "ga.run" in out            # profiler attribution surfaced
        html = report.read_text()
        assert html.startswith("<!DOCTYPE html>") or "<html" in html
        assert "gauges" in html

    def test_live_metrics_with_slo_file(self, tmp_path, capsys):
        import json

        from repro.experiments.cli import main
        from repro.obs import default_slo_rules

        rules = tmp_path / "slo.json"
        rules.write_text(json.dumps(
            [rule.to_dict() for rule in default_slo_rules()]
        ))
        assert main([
            "stream-mqo", "--live-metrics", "--slo", str(rules),
        ]) == 0
        assert "trace-check" in capsys.readouterr().out

    def test_live_flags_require_live_metrics(self):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit):
            main(["fig4", "--live-metrics"])
        with pytest.raises(SystemExit):
            main(["stream-mqo", "--profile"])
