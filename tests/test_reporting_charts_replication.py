"""Unit tests: ASCII bar charts and replication confidence intervals."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.experiments.replication import MeanCI, replicate, summarize
from repro.reporting.charts import bar_chart, grouped_bar_chart
from repro.reporting.tables import ResultTable


class TestBarChart:
    def test_bars_scale_to_peak(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_title_and_values_shown(self):
        chart = bar_chart(["x"], [0.5], title="demo")
        assert chart.startswith("demo")
        assert "0.5000" in chart

    def test_explicit_max_value(self):
        chart = bar_chart(["x"], [1.0], width=10, max_value=2.0)
        assert chart.count("#") == 5

    def test_zero_values_render_empty_bars(self):
        chart = bar_chart(["x"], [0.0], width=10)
        assert "#" not in chart

    def test_validation(self):
        with pytest.raises(ConfigError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ConfigError):
            bar_chart([], [])
        with pytest.raises(ConfigError):
            bar_chart(["a"], [-1.0])


class TestGroupedBarChart:
    def make_table(self) -> ResultTable:
        table = ResultTable("t", ["sites", "approach", "mean_iv"])
        for sites in (2, 10):
            table.add(sites, "ivqp", 0.6 - sites * 0.005)
            table.add(sites, "federation", 0.5 - sites * 0.005)
        return table

    def test_one_block_per_group(self):
        chart = grouped_bar_chart(self.make_table(), "sites", "approach",
                                  "mean_iv")
        assert "sites = 2" in chart
        assert "sites = 10" in chart
        assert chart.count("ivqp") == 2

    def test_composite_group_columns(self):
        table = ResultTable("t", ["p", "sites", "approach", "v"])
        table.add("skewed", 2, "ivqp", 0.5)
        table.add("uniform", 2, "ivqp", 0.4)
        chart = grouped_bar_chart(table, ("p", "sites"), "approach", "v")
        assert "p = skewed, sites = 2" in chart
        assert "p = uniform, sites = 2" in chart

    def test_shared_scale_across_groups(self):
        table = ResultTable("t", ["g", "s", "v"])
        table.add("a", "x", 1.0)
        table.add("b", "x", 2.0)
        chart = grouped_bar_chart(table, "g", "s", "v", width=10)
        lines = [line for line in chart.splitlines() if "#" in line]
        assert lines[0].count("#") == 5  # scaled by the global peak (2.0)
        assert lines[1].count("#") == 10

    def test_unknown_column_rejected(self):
        with pytest.raises(ConfigError):
            grouped_bar_chart(self.make_table(), "nope", "approach", "mean_iv")


class TestSummarize:
    def test_mean_and_symmetric_interval(self):
        ci = summarize([1.0, 2.0, 3.0])
        assert ci.mean == pytest.approx(2.0)
        assert ci.low == pytest.approx(2.0 - ci.half_width)
        assert ci.high == pytest.approx(2.0 + ci.half_width)
        assert ci.samples == 3

    def test_constant_samples_zero_width(self):
        ci = summarize([5.0, 5.0, 5.0, 5.0])
        assert ci.half_width == pytest.approx(0.0)

    def test_needs_two_samples(self):
        with pytest.raises(ConfigError):
            summarize([1.0])

    def test_large_sample_uses_normal_quantile(self):
        samples = [float(i % 7) for i in range(100)]
        ci = summarize(samples)
        assert ci.half_width > 0
        assert ci.samples == 100

    def test_overlap_detection(self):
        a = MeanCI(mean=1.0, half_width=0.2, samples=5)
        b = MeanCI(mean=1.3, half_width=0.2, samples=5)
        c = MeanCI(mean=2.0, half_width=0.1, samples=5)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_str_rendering(self):
        assert "±" in str(MeanCI(1.0, 0.1, 3))


class TestReplicate:
    def test_runs_per_seed(self):
        seen = []

        def run(seed: int) -> float:
            seen.append(seed)
            return float(seed)

        ci = replicate(run, seeds=[1, 2, 3])
        assert seen == [1, 2, 3]
        assert ci.mean == pytest.approx(2.0)

    def test_needs_two_seeds(self):
        with pytest.raises(ConfigError):
            replicate(lambda seed: 0.0, seeds=[1])

    def test_experiment_level_replication(self, tpch_tiny):
        """Replicated TPC-H streams: run-to-run spread is bounded."""
        from repro.core.value import DiscountRates
        from repro.experiments.config import TpchSetup
        from repro.experiments.runner import run_stream

        setup = TpchSetup(scale=0.0005, seed=7)

        def run(seed: int) -> float:
            config = setup.system_config(
                "federation", DiscountRates(0.05, 0.05), 1.0
            )
            return run_stream(
                config, "federation", setup.queries()[:6],
                mean_interarrival=10.0, arrival_seed=seed,
            ).mean_iv

        ci = replicate(run, seeds=[1, 2, 3, 4])
        assert 0.0 < ci.mean < 1.0
        assert ci.half_width < ci.mean  # spread well below the signal
