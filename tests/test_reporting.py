"""Unit tests: result tables and series formatting."""

from __future__ import annotations

import pytest

from repro.errors import ConfigError
from repro.reporting.tables import ResultTable, format_series, format_table


class TestFormatTable:
    def test_alignment_and_headers(self):
        text = format_table(
            ["name", "value"], [["a", 1.23456], ["bb", 2.0]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert "1.2346" in text  # floats at 4 decimals
        assert "2.0000" in text

    def test_row_width_checked(self):
        with pytest.raises(ConfigError):
            format_table(["a", "b"], [["only-one"]])

    def test_headers_required(self):
        with pytest.raises(ConfigError):
            format_table([], [])

    def test_right_justified_columns(self):
        text = format_table(["col"], [["x"], ["yyyy"]])
        lines = text.splitlines()
        assert lines[-2].endswith("x")
        assert lines[-1].endswith("yyyy")


class TestResultTable:
    def test_add_and_render(self):
        table = ResultTable("demo", ["k", "v"])
        table.add("a", 1.0)
        table.add("b", 2.0)
        text = table.render()
        assert "demo" in text
        assert text.count("\n") == 4  # title + header + rule + 2 rows

    def test_add_checks_width(self):
        table = ResultTable("demo", ["k", "v"])
        with pytest.raises(ConfigError):
            table.add("only-one")

    def test_column_extraction(self):
        table = ResultTable("demo", ["k", "v"])
        table.add("a", 1.0)
        table.add("b", 2.0)
        assert table.column("v") == [1.0, 2.0]
        with pytest.raises(ConfigError):
            table.column("missing")


class TestFormatSeries:
    def test_pairs_rendered(self):
        text = format_series("ivqp", [1, 2], [0.5, 0.25], "sites", "iv")
        assert "ivqp" in text
        assert "(1, 0.5000)" in text
        assert "sites -> iv" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            format_series("s", [1], [1.0, 2.0])
