"""A deterministic time-ordered event heap with FIFO tie-breaking.

The discrete-event :class:`~repro.sim.scheduler.Simulator` owns the *real*
runtime; :class:`Timeline` is the lightweight analytic counterpart used by
schedulers that replay time without processes — e.g. the online MQO loop
(:mod:`repro.mqo.online`), which interleaves query arrivals, window closes
and analytic completions without spinning up a simulation.

Entries at the same instant pop in push order (a monotonically increasing
sequence number breaks ties), so replays are deterministic and arrival
order is preserved exactly.
"""

from __future__ import annotations

import heapq
from typing import Any

__all__ = ["Timeline"]


class Timeline:
    """Min-heap of ``(time, tag, payload)`` events, FIFO within an instant."""

    __slots__ = ("_heap", "_seq")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, str, Any]] = []
        self._seq = 0

    def push(self, time: float, tag: str, payload: Any = None) -> None:
        """Schedule an event; same-time events pop in push order."""
        heapq.heappush(self._heap, (float(time), self._seq, tag, payload))
        self._seq += 1

    def pop(self) -> tuple[float, str, Any]:
        """Remove and return the earliest ``(time, tag, payload)`` event.

        Raises :class:`IndexError` when empty, like ``heapq``.
        """
        time, _seq, tag, payload = heapq.heappop(self._heap)
        return time, tag, payload

    def peek_time(self) -> float:
        """Time of the earliest pending event (raises IndexError if empty)."""
        return self._heap[0][0]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)
