"""Plain-text tables and series for experiment output.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that formatting in one place.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.errors import ConfigError

__all__ = ["format_table", "ResultTable", "format_series"]


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    if not headers:
        raise ConfigError("format_table needs at least one header")
    rendered_rows = [[_fmt(cell) for cell in row] for row in rows]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ConfigError(
                f"row width {len(row)} != header width {len(headers)}"
            )
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    parts = []
    if title:
        parts.append(title)
    parts.append(line(list(headers)))
    parts.append("  ".join("-" * w for w in widths))
    parts.extend(line(row) for row in rendered_rows)
    return "\n".join(parts)


@dataclass
class ResultTable:
    """An accumulating result table with a title."""

    title: str
    headers: list[str]
    rows: list[list] = field(default_factory=list)
    footnotes: list[str] = field(default_factory=list)

    def add(self, *cells) -> None:
        """Append one row."""
        if len(cells) != len(self.headers):
            raise ConfigError(
                f"row width {len(cells)} != header width {len(self.headers)}"
            )
        self.rows.append(list(cells))

    def add_footnote(self, text: str) -> None:
        """Attach a note rendered below the table (e.g. perf counters)."""
        self.footnotes.append(text)

    def render(self) -> str:
        """The formatted table."""
        rendered = format_table(self.headers, self.rows, title=self.title)
        if self.footnotes:
            rendered += "\n" + "\n".join(f"  {note}" for note in self.footnotes)
        return rendered

    def column(self, header: str) -> list:
        """All values of one column."""
        try:
            index = self.headers.index(header)
        except ValueError:
            raise ConfigError(f"table has no column {header!r}")
        return [row[index] for row in self.rows]


def format_series(
    label: str,
    xs: Sequence,
    ys: Sequence[float],
    x_name: str = "x",
    y_name: str = "y",
) -> str:
    """Render one figure series as aligned (x, y) pairs."""
    if len(xs) != len(ys):
        raise ConfigError("series xs and ys must align")
    pairs = "  ".join(f"({_fmt(x)}, {_fmt(y)})" for x, y in zip(xs, ys))
    return f"{label} [{x_name} -> {y_name}]: {pairs}"
