"""The 22 TPC-H queries as DSS reports.

The paper evaluates on "TPC-H benchmark data set: 6GB data and 22 queries"
(Section 4.1).  Each query here carries:

* its **physical table footprint** — with ``lineitem`` expanded to the
  partition tables, matching the paper's 12-table setup;
* a **simplified engine-executable definition** preserving the original's
  join shape and table set.  TPC-H subqueries/EXISTS blocks are flattened
  into joins or filters — the reproduction needs relative *costs* and table
  *footprints*, not answer-for-answer TPC-H compliance (the paper never
  inspects query answers either, only latencies and information values).

Dates are integer day offsets from 1992-01-01 (0..2555); the literals below
mirror the spec's cut-offs (e.g. day 730 ≈ 1994-01-01).
"""

from __future__ import annotations

from repro.data.tpch import TpchInstance, lineitem_partition_names
from repro.engine.expr import Col, Const
from repro.engine.query import LogicalQuery, QueryBuilder
from repro.errors import WorkloadError
from repro.workload.query import DSSQuery

__all__ = ["tpch_queries", "tpch_query", "TPCH_FOOTPRINTS"]

#: Logical table footprint of each TPC-H query (per the TPC-H specification).
TPCH_FOOTPRINTS: dict[str, tuple[str, ...]] = {
    "Q1": ("lineitem",),
    "Q2": ("part", "supplier", "partsupp", "nation", "region"),
    "Q3": ("customer", "orders", "lineitem"),
    "Q4": ("orders", "lineitem"),
    "Q5": ("customer", "orders", "lineitem", "supplier", "nation", "region"),
    "Q6": ("lineitem",),
    "Q7": ("supplier", "lineitem", "orders", "customer", "nation"),
    "Q8": ("part", "supplier", "lineitem", "orders", "customer", "nation", "region"),
    "Q9": ("part", "supplier", "lineitem", "partsupp", "orders", "nation"),
    "Q10": ("customer", "orders", "lineitem", "nation"),
    "Q11": ("partsupp", "supplier", "nation"),
    "Q12": ("orders", "lineitem"),
    "Q13": ("customer", "orders"),
    "Q14": ("lineitem", "part"),
    "Q15": ("supplier", "lineitem"),
    "Q16": ("partsupp", "part", "supplier"),
    "Q17": ("lineitem", "part"),
    "Q18": ("customer", "orders", "lineitem"),
    "Q19": ("lineitem", "part"),
    "Q20": ("supplier", "nation", "partsupp", "part", "lineitem"),
    "Q21": ("supplier", "lineitem", "orders", "nation"),
    "Q22": ("customer", "orders"),
}


def _expand_footprint(logical: tuple[str, ...], partitions: int) -> tuple[str, ...]:
    physical: list[str] = []
    for table in logical:
        if table == "lineitem":
            physical.extend(lineitem_partition_names(partitions))
        else:
            physical.append(table)
    return tuple(physical)


def _build_logical(name: str) -> LogicalQuery:
    """The simplified engine definition of one TPC-H query."""
    builder = QueryBuilder(name)
    if name == "Q1":
        return (
            builder.table("lineitem", "l")
            .where(Col("l.l_shipdate") <= Const(2400))
            .group("l.l_returnflag", "l.l_linestatus")
            .agg("sum", Col("l.l_quantity"), "sum_qty")
            .agg("sum", Col("l.l_extendedprice"), "sum_base_price")
            .agg("avg", Col("l.l_discount"), "avg_disc")
            .agg("count", None, "count_order")
            .order("l.l_returnflag", "l.l_linestatus")
            .build()
        )
    if name == "Q2":
        return (
            builder.table("part", "p").table("supplier", "s")
            .table("partsupp", "ps").table("nation", "n").table("region", "r")
            .join("p.p_partkey", "ps.ps_partkey")
            .join("s.s_suppkey", "ps.ps_suppkey")
            .join("s.s_nationkey", "n.n_nationkey")
            .join("n.n_regionkey", "r.r_regionkey")
            .where(Col("p.p_size") == Const(15))
            .where(Col("r.r_name") == Const("EUROPE"))
            .group("s.s_name")
            .agg("min", Col("ps.ps_supplycost"), "min_cost")
            .order("min_cost")
            .take(100)
            .build()
        )
    if name == "Q3":
        return (
            builder.table("customer", "c").table("orders", "o").table("lineitem", "l")
            .join("c.c_custkey", "o.o_custkey")
            .join("l.l_orderkey", "o.o_orderkey")
            .where(Col("c.c_mktsegment") == Const("BUILDING"))
            .where(Col("o.o_orderdate") < Const(1170))
            .where(Col("l.l_shipdate") > Const(1170))
            .group("l.l_orderkey", "o.o_orderdate")
            .agg("sum", Col("l.l_extendedprice") * (Const(1.0) - Col("l.l_discount")),
                 "revenue")
            .order("revenue", descending=True)
            .take(10)
            .build()
        )
    if name == "Q4":
        return (
            builder.table("orders", "o").table("lineitem", "l")
            .join("o.o_orderkey", "l.l_orderkey")
            .where(Col("o.o_orderdate") >= Const(900))
            .where(Col("o.o_orderdate") < Const(990))
            .group("o.o_orderpriority")
            .agg("count", None, "order_count")
            .order("o.o_orderpriority")
            .build()
        )
    if name == "Q5":
        return (
            builder.table("customer", "c").table("orders", "o")
            .table("lineitem", "l").table("supplier", "s")
            .table("nation", "n").table("region", "r")
            .join("c.c_custkey", "o.o_custkey")
            .join("l.l_orderkey", "o.o_orderkey")
            .join("l.l_suppkey", "s.s_suppkey")
            .join("c.c_nationkey", "n.n_nationkey")
            .join("n.n_regionkey", "r.r_regionkey")
            .where(Col("r.r_name") == Const("ASIA"))
            .where(Col("o.o_orderdate") >= Const(730))
            .where(Col("o.o_orderdate") < Const(1095))
            .group("n.n_name")
            .agg("sum", Col("l.l_extendedprice") * (Const(1.0) - Col("l.l_discount")),
                 "revenue")
            .order("revenue", descending=True)
            .build()
        )
    if name == "Q6":
        return (
            builder.table("lineitem", "l")
            .where(Col("l.l_shipdate") >= Const(730))
            .where(Col("l.l_shipdate") < Const(1095))
            .where(Col("l.l_discount") >= Const(0.05))
            .where(Col("l.l_discount") <= Const(0.07))
            .where(Col("l.l_quantity") < Const(24.0))
            .agg("sum", Col("l.l_extendedprice") * Col("l.l_discount"), "revenue")
            .build()
        )
    if name == "Q7":
        return (
            builder.table("supplier", "s").table("lineitem", "l")
            .table("orders", "o").table("customer", "c")
            .table("nation", "n1").table("nation", "n2")
            .join("s.s_suppkey", "l.l_suppkey")
            .join("o.o_orderkey", "l.l_orderkey")
            .join("c.c_custkey", "o.o_custkey")
            .join("s.s_nationkey", "n1.n_nationkey")
            .join("c.c_nationkey", "n2.n_nationkey")
            .where(Col("n1.n_name") == Const("FRANCE"))
            .where(Col("l.l_shipdate") >= Const(1095))
            .group("n2.n_name")
            .agg("sum", Col("l.l_extendedprice") * (Const(1.0) - Col("l.l_discount")),
                 "revenue")
            .build()
        )
    if name == "Q8":
        return (
            builder.table("part", "p").table("supplier", "s")
            .table("lineitem", "l").table("orders", "o")
            .table("customer", "c").table("nation", "n1")
            .table("nation", "n2").table("region", "r")
            .join("p.p_partkey", "l.l_partkey")
            .join("s.s_suppkey", "l.l_suppkey")
            .join("l.l_orderkey", "o.o_orderkey")
            .join("o.o_custkey", "c.c_custkey")
            .join("c.c_nationkey", "n1.n_nationkey")
            .join("n1.n_regionkey", "r.r_regionkey")
            .join("s.s_nationkey", "n2.n_nationkey")
            .where(Col("r.r_name") == Const("AMERICA"))
            .where(Col("p.p_type") == Const("ECONOMY POLISHED BRASS"))
            .group("n2.n_name")
            .agg("sum", Col("l.l_extendedprice") * (Const(1.0) - Col("l.l_discount")),
                 "volume")
            .build()
        )
    if name == "Q9":
        return (
            builder.table("part", "p").table("supplier", "s")
            .table("lineitem", "l").table("partsupp", "ps")
            .table("orders", "o").table("nation", "n")
            .join("s.s_suppkey", "l.l_suppkey")
            .join("ps.ps_suppkey", "l.l_suppkey")
            .join("ps.ps_partkey", "l.l_partkey")
            .join("p.p_partkey", "l.l_partkey")
            .join("o.o_orderkey", "l.l_orderkey")
            .join("s.s_nationkey", "n.n_nationkey")
            .where(Col("p.p_brand") == Const("Brand#23"))
            .group("n.n_name")
            .agg("sum",
                 Col("l.l_extendedprice") * (Const(1.0) - Col("l.l_discount"))
                 - Col("ps.ps_supplycost") * Col("l.l_quantity"),
                 "sum_profit")
            .build()
        )
    if name == "Q10":
        return (
            builder.table("customer", "c").table("orders", "o")
            .table("lineitem", "l").table("nation", "n")
            .join("c.c_custkey", "o.o_custkey")
            .join("l.l_orderkey", "o.o_orderkey")
            .join("c.c_nationkey", "n.n_nationkey")
            .where(Col("o.o_orderdate") >= Const(640))
            .where(Col("o.o_orderdate") < Const(730))
            .where(Col("l.l_returnflag") == Const("R"))
            .group("c.c_custkey", "n.n_name")
            .agg("sum", Col("l.l_extendedprice") * (Const(1.0) - Col("l.l_discount")),
                 "revenue")
            .order("revenue", descending=True)
            .take(20)
            .build()
        )
    if name == "Q11":
        return (
            builder.table("partsupp", "ps").table("supplier", "s").table("nation", "n")
            .join("ps.ps_suppkey", "s.s_suppkey")
            .join("s.s_nationkey", "n.n_nationkey")
            .where(Col("n.n_name") == Const("GERMANY"))
            .group("ps.ps_partkey")
            .agg("sum", Col("ps.ps_supplycost") * Col("ps.ps_availqty"), "value")
            .order("value", descending=True)
            .take(50)
            .build()
        )
    if name == "Q12":
        return (
            builder.table("orders", "o").table("lineitem", "l")
            .join("o.o_orderkey", "l.l_orderkey")
            .where(Col("l.l_shipdate") >= Const(730))
            .where(Col("l.l_shipdate") < Const(1095))
            .group("o.o_orderpriority")
            .agg("count", None, "line_count")
            .order("o.o_orderpriority")
            .build()
        )
    if name == "Q13":
        return (
            builder.table("customer", "c").table("orders", "o")
            .join("c.c_custkey", "o.o_custkey")
            .group("c.c_custkey")
            .agg("count", None, "c_count")
            .order("c_count", descending=True)
            .take(100)
            .build()
        )
    if name == "Q14":
        return (
            builder.table("lineitem", "l").table("part", "p")
            .join("l.l_partkey", "p.p_partkey")
            .where(Col("l.l_shipdate") >= Const(1000))
            .where(Col("l.l_shipdate") < Const(1030))
            .agg("sum", Col("l.l_extendedprice") * (Const(1.0) - Col("l.l_discount")),
                 "promo_revenue")
            .build()
        )
    if name == "Q15":
        return (
            builder.table("supplier", "s").table("lineitem", "l")
            .join("s.s_suppkey", "l.l_suppkey")
            .where(Col("l.l_shipdate") >= Const(1400))
            .where(Col("l.l_shipdate") < Const(1490))
            .group("s.s_suppkey", "s.s_name")
            .agg("sum", Col("l.l_extendedprice") * (Const(1.0) - Col("l.l_discount")),
                 "total_revenue")
            .order("total_revenue", descending=True)
            .take(1)
            .build()
        )
    if name == "Q16":
        return (
            builder.table("partsupp", "ps").table("part", "p").table("supplier", "s")
            .join("p.p_partkey", "ps.ps_partkey")
            .join("s.s_suppkey", "ps.ps_suppkey")
            .where(Col("p.p_brand") != Const("Brand#45"))
            .where(Col("p.p_size") >= Const(10))
            .group("p.p_brand", "p.p_type", "p.p_size")
            .agg("count", None, "supplier_cnt")
            .order("supplier_cnt", descending=True)
            .take(100)
            .build()
        )
    if name == "Q17":
        return (
            builder.table("lineitem", "l").table("part", "p")
            .join("p.p_partkey", "l.l_partkey")
            .where(Col("p.p_brand") == Const("Brand#23"))
            .where(Col("l.l_quantity") < Const(5.0))
            .agg("avg", Col("l.l_extendedprice"), "avg_yearly")
            .build()
        )
    if name == "Q18":
        return (
            builder.table("customer", "c").table("orders", "o").table("lineitem", "l")
            .join("c.c_custkey", "o.o_custkey")
            .join("o.o_orderkey", "l.l_orderkey")
            .where(Col("l.l_quantity") > Const(45.0))
            .group("c.c_name", "o.o_orderkey", "o.o_totalprice")
            .agg("sum", Col("l.l_quantity"), "total_qty")
            .order("o.o_totalprice", descending=True)
            .take(100)
            .build()
        )
    if name == "Q19":
        return (
            builder.table("lineitem", "l").table("part", "p")
            .join("p.p_partkey", "l.l_partkey")
            .where(Col("p.p_brand") == Const("Brand#12"))
            .where(Col("l.l_quantity") >= Const(1.0))
            .where(Col("l.l_quantity") <= Const(11.0))
            .agg("sum", Col("l.l_extendedprice") * (Const(1.0) - Col("l.l_discount")),
                 "revenue")
            .build()
        )
    if name == "Q20":
        return (
            builder.table("supplier", "s").table("nation", "n")
            .table("partsupp", "ps").table("part", "p").table("lineitem", "l")
            .join("s.s_suppkey", "ps.ps_suppkey")
            .join("ps.ps_partkey", "p.p_partkey")
            .join("l.l_partkey", "p.p_partkey")
            .join("s.s_nationkey", "n.n_nationkey")
            .where(Col("n.n_name") == Const("CANADA"))
            .where(Col("l.l_shipdate") >= Const(730))
            .where(Col("l.l_shipdate") < Const(1095))
            .group("s.s_name")
            .agg("sum", Col("ps.ps_availqty"), "avail")
            .order("s.s_name")
            .take(100)
            .build()
        )
    if name == "Q21":
        return (
            builder.table("supplier", "s").table("lineitem", "l")
            .table("orders", "o").table("nation", "n")
            .join("s.s_suppkey", "l.l_suppkey")
            .join("o.o_orderkey", "l.l_orderkey")
            .join("s.s_nationkey", "n.n_nationkey")
            .where(Col("n.n_name") == Const("SAUDI ARABIA"))
            .where(Col("o.o_orderstatus") == Const("F"))
            .group("s.s_name")
            .agg("count", None, "numwait")
            .order("numwait", descending=True)
            .take(100)
            .build()
        )
    if name == "Q22":
        return (
            builder.table("customer", "c").table("orders", "o")
            .join("c.c_custkey", "o.o_custkey")
            .where(Col("c.c_acctbal") > Const(0.0))
            .group("c.c_nationkey")
            .agg("count", None, "numcust")
            .agg("sum", Col("c.c_acctbal"), "totacctbal")
            .order("c.c_nationkey")
            .build()
        )
    raise WorkloadError(f"unknown TPC-H query {name!r}")


def tpch_query(
    name: str,
    query_id: int,
    partitions: int = 5,
    business_value: float = 1.0,
) -> DSSQuery:
    """Build one TPC-H query as a :class:`DSSQuery`."""
    if name not in TPCH_FOOTPRINTS:
        raise WorkloadError(f"unknown TPC-H query {name!r}")
    return DSSQuery(
        query_id=query_id,
        name=name,
        tables=_expand_footprint(TPCH_FOOTPRINTS[name], partitions),
        business_value=business_value,
        logical=_build_logical(name),
    )


def tpch_queries(
    instance: TpchInstance | None = None,
    partitions: int | None = None,
) -> list[DSSQuery]:
    """All 22 TPC-H queries, ids 1..22, LineItem expanded to partitions."""
    if partitions is None:
        partitions = instance.partitions if instance is not None else 5
    return [
        tpch_query(name, query_id=index + 1, partitions=partitions)
        for index, name in enumerate(TPCH_FOOTPRINTS)
    ]
