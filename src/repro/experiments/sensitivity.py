"""EXT1 — routing-decision sensitivity to the discount rates.

Figures 1 and 2 of the paper argue qualitatively that the plan choice flips
with the discount rates: "plan 1 may achieve a better information value
than plan 2" when λ_CL < λ_SL, and vice versa; and that delaying execution
pays "if the discount rate of synchronization latency is greater than that
of computational latency".  This experiment makes that argument
quantitative: sweep both rates over a grid for a representative two-table
query and record which *kind* of plan IVQP picks — all-remote, all-replica,
mixed, or delayed — producing the phase diagram the paper gestures at.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.optimizer import IVQPOptimizer
from repro.core.value import DiscountRates
from repro.federation.catalog import Catalog, StreamSyncSchedule, TableDef
from repro.federation.costmodel import CostModel, CostParameters
from repro.reporting.tables import ResultTable
from repro.workload.query import DSSQuery

__all__ = ["SensitivityConfig", "classify_plan", "run_sensitivity"]


@dataclass
class SensitivityConfig:
    """Grid and scenario parameters for the EXT1 sweep.

    Two scenarios cover the paper's two qualitative figures:

    * ``fig1`` — long sync cycles, submission mid-cycle: the live question
      is *remote base tables vs. stale replicas* (paper Figure 1);
    * ``fig2`` — short sync cycles, a synchronization imminent: the live
      question is *immediate vs. delayed execution* (paper Figure 2).
    """

    rates: tuple[float, ...] = (0.005, 0.01, 0.02, 0.05, 0.1, 0.2)
    scenarios: dict[str, tuple[float, float]] = field(
        default_factory=lambda: {
            "fig1": (24.0, 34.0),  # (sync period, submission instant)
            "fig2": (8.0, 20.5),
        }
    )
    table_rows: int = 10_000
    #: Remote reads ~3x slower than replica reads, as in the TPC-H runs.
    cost_params: CostParameters = field(
        default_factory=lambda: CostParameters(
            local_throughput=5_000.0, remote_throughput=1_500.0
        )
    )


def classify_plan(plan) -> str:
    """The qualitative routing decision a plan embodies."""
    if plan.delayed:
        return "delayed"
    if not plan.remote_tables:
        return "all-replica"
    if not plan.replica_tables:
        return "all-remote"
    return "mixed"


def _build_world(config: SensitivityConfig, sync_period: float):
    catalog = Catalog()
    for index, name in enumerate(("T1", "T2")):
        catalog.add_table(
            TableDef(name, site=index, row_count=config.table_rows)
        )
        catalog.add_replica(
            name,
            StreamSyncSchedule.periodic(
                sync_period,
                offset=sync_period * (0.5 + 0.25 * index),
            ),
        )
    query = DSSQuery(query_id=1, name="ext1", tables=("T1", "T2"))
    cost_model = CostModel(catalog, params=config.cost_params)
    return catalog, cost_model, query


def run_sensitivity(config: SensitivityConfig | None = None) -> ResultTable:
    """Sweep (λ_CL, λ_SL) per scenario; record the plan kind and IV."""
    config = config or SensitivityConfig()
    table = ResultTable(
        title="EXT1: IVQP routing decision vs (lambda_CL, lambda_SL)",
        headers=[
            "scenario", "lambda_cl", "lambda_sl", "decision", "iv", "cl", "sl",
        ],
    )
    for scenario, (sync_period, submit_at) in config.scenarios.items():
        catalog, cost_model, query = _build_world(config, sync_period)
        for rate_cl in config.rates:
            for rate_sl in config.rates:
                rates = DiscountRates(
                    computational=rate_cl, synchronization=rate_sl
                )
                optimizer = IVQPOptimizer(catalog, cost_model, rates)
                plan = optimizer.choose_plan(query, submit_at)
                table.add(
                    scenario,
                    rate_cl,
                    rate_sl,
                    classify_plan(plan),
                    plan.information_value,
                    plan.computational_latency,
                    plan.synchronization_latency,
                )
    return table
