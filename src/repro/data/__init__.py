"""Data generators: TPC-H micro-instances, synthetic schemas, placements."""

from repro.data.placement import (
    round_robin_placement,
    skewed_placement,
    uniform_placement,
)
from repro.data.synthetic import SyntheticInstance, generate_synthetic
from repro.data.tpch import (
    LINEITEM_PARTITIONS,
    TPCH_SCHEMAS,
    TpchInstance,
    generate_tpch,
    lineitem_partition_names,
)

__all__ = [
    "LINEITEM_PARTITIONS",
    "TPCH_SCHEMAS",
    "SyntheticInstance",
    "TpchInstance",
    "generate_synthetic",
    "generate_tpch",
    "lineitem_partition_names",
    "round_robin_placement",
    "skewed_placement",
    "uniform_placement",
]
