"""Write ``BENCH_serve.json`` — a point-in-time serving-runtime snapshot.

Runs the two-phase wall-clock load bench (``repro.serve.bench``): a live
asyncio HTTP service over a :class:`~repro.sim.clocks.WallClock`, driven
at the sustained rate and then at a 2× overload burst, with per-request
end-to-end wall latency measured on the wire.  Invoked by
``make bench-serve``; the JSON gives the serving runtime a regression
baseline — ``*_ms`` latency keys sit in the bench gate's 3× wall family,
throughput/shed/IV shape is recorded for the report but asserted
structurally by the bench itself (checker-clean trace, replay-equal
decisions).

Usage::

    PYTHONPATH=src python benchmarks/serve_snapshot.py [output.json]
"""

from __future__ import annotations

import asyncio
import json
import sys
from pathlib import Path

from repro.errors import SimulationError
from repro.serve.bench import ServeBenchConfig, serve_bench


def snapshot() -> dict:
    data = asyncio.run(serve_bench(ServeBenchConfig()))
    if data["trace"]["violations"]:
        raise SimulationError(
            f"serve bench trace has {data['trace']['violations']} violations"
        )
    if not data["trace"]["replay_equal"]:
        raise SimulationError(
            "SimClock replay diverged from the live decision log"
        )
    return data


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("BENCH_serve.json")
    data = snapshot()
    out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out}")
    print(json.dumps(data, indent=2))


if __name__ == "__main__":
    main()
