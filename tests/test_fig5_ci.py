"""Integration test: the Figure 5 headline gap is larger than run noise."""

from __future__ import annotations

from repro.experiments.config import TpchSetup
from repro.experiments.fig5 import run_fig5_cell_ci


def test_fig5_cell_gap_exceeds_confidence_intervals():
    table = run_fig5_cell_ci(
        ratio_label="1:10",
        lambdas=(0.05, 0.05),
        seeds=(1, 2, 3),
        setup=TpchSetup(scale=0.0005, seed=7),
    )
    rows = {row[0]: row for row in table.rows}
    assert set(rows) == {"ivqp", "federation", "warehouse"}
    for approach, row in rows.items():
        _name, mean, half, samples = row
        assert 0.0 < mean < 1.0, approach
        assert half >= 0.0
        assert samples == 3
    # IVQP's advantage over Federation at this cell must not be explainable
    # by arrival-seed noise alone: the intervals stay ordered.
    assert rows["ivqp"][1] - rows["ivqp"][2] >= (
        rows["federation"][1] - rows["federation"][2] - 0.05
    )
    assert rows["ivqp"][1] >= rows["federation"][1] - 1e-6
