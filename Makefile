# Convenience targets for the reproduction.

PYTHON ?= python

.PHONY: install test bench experiments check examples all

install:
	pip install -e .

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

experiments:
	$(PYTHON) -m repro all

check:
	$(PYTHON) -m repro check

examples:
	@for example in examples/*.py; do \
		echo "== $$example =="; \
		$(PYTHON) $$example || exit 1; \
	done

all: test bench check
