"""Unit tests: random search and hill climbing baselines (ABL5 machinery)."""

from __future__ import annotations

import pytest

from repro.errors import OptimizationError
from repro.mqo.search_baselines import SearchResult, hill_climb, random_search


def sortedness(permutation: list[int]) -> float:
    """Fitness peaking at the identity permutation (max 0.0)."""
    return -float(
        sum(abs(value - index) for index, value in enumerate(permutation))
    )


class TestRandomSearch:
    def test_respects_budget(self):
        calls = []

        def fitness(permutation):
            calls.append(1)
            return sortedness(permutation)

        result = random_search(list(range(6)), fitness, budget=25, seed=1)
        assert result.evaluations == 25
        assert len(calls) == 25

    def test_keeps_best_seen(self):
        result = random_search(list(range(5)), sortedness, budget=200, seed=2)
        assert result.best_fitness >= sortedness(list(range(5))[::-1])
        assert sorted(result.best) == list(range(5))

    def test_seed_chromosome_is_floor(self):
        identity = list(range(8))
        result = random_search(
            identity, sortedness, budget=2, seed=3, seed_chromosome=identity
        )
        assert result.best_fitness == 0.0

    def test_validation(self):
        with pytest.raises(OptimizationError):
            random_search([], sortedness, budget=5)
        with pytest.raises(OptimizationError):
            random_search([1], sortedness, budget=0)


class TestHillClimb:
    def test_improves_monotonically_from_seed(self):
        start = list(reversed(range(7)))
        result = hill_climb(
            list(range(7)), sortedness, budget=500, seed=4,
            seed_chromosome=start,
        )
        assert result.best_fitness > sortedness(start)
        assert sorted(result.best) == list(range(7))

    def test_restarts_escape_local_optima_within_budget(self):
        """A spiky fitness where the seed is a local optimum."""
        target = [2, 0, 1]

        def spiky(permutation):
            if permutation == target:
                return 10.0
            if permutation == [0, 1, 2]:
                return 5.0  # local optimum: any single swap scores lower
            return 0.0

        result = hill_climb(
            [0, 1, 2], spiky, budget=300, seed=5,
            seed_chromosome=[0, 1, 2],
        )
        assert result.best_fitness == 10.0

    def test_respects_budget(self):
        calls = []

        def fitness(permutation):
            calls.append(1)
            return sortedness(permutation)

        hill_climb(list(range(5)), fitness, budget=40, seed=6)
        assert len(calls) == 40

    def test_single_gene(self):
        result = hill_climb([7], lambda p: 1.0, budget=3, seed=0)
        assert result.best == [7]
        assert isinstance(result, SearchResult)

    def test_validation(self):
        with pytest.raises(OptimizationError):
            hill_climb([], sortedness, budget=5)


class TestComparativeBehaviour:
    def test_ga_is_competitive_on_structured_fitness(self):
        """On a smooth landscape the GA should match or beat both baselines
        at an equal budget — the paper's Goldberg argument in miniature."""
        from repro.mqo.ga import GAConfig, GeneticAlgorithm

        genes = list(range(9))
        ga = GeneticAlgorithm(
            genes, sortedness,
            GAConfig(population_size=16, generations=25), seed=7,
        )
        ga_result = ga.run()
        budget = max(ga_result.fitness_calls, 2)
        rand = random_search(genes, sortedness, budget, seed=7)
        climb = hill_climb(genes, sortedness, budget, seed=7)
        assert ga_result.best_fitness >= max(
            rand.best_fitness, climb.best_fitness
        ) - 1e-9
