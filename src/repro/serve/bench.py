"""Load generator and smoke test for the wall-clock serving runtime.

``serve_bench`` drives a live :class:`~repro.serve.httpd.HTTPServer`
through two phases over real sockets:

* **baseline** — one query per stream minute (the paper's sustained
  near-real-time submission rate);
* **overload** — one query per *half* stream minute: a 2× burst that
  forces the rolling-window scheduler to shed/defer under its
  ``max_pending`` bound and IV floor.

Stream minutes are compressed onto wall time through
``seconds_per_minute`` so the whole bench takes seconds, not the paper's
half hour — the *scheduling decisions* are identical either way (that is
the Clock seam's contract, and the bench re-proves it by replaying its
own arrival trace through a SimClock before reporting).

Per-request wall latency is measured around the blocking ``POST /submit``
(submission → completed result on the wire), aggregated into
p50/p95/p99.  The resulting dict is what ``benchmarks/serve_snapshot.py``
commits as ``BENCH_serve.json`` and the bench gate tolerances police
(``*_ms`` keys are in the 3× wall family; throughput/shed shape is
reported but not gated — it is asserted structurally here instead).

``serve_smoke`` is the tiny correctness pass behind ``make serve-smoke``:
a handful of queries over HTTP exercising every route, then hard asserts
— checker-clean trace, zero violations, replay-equal decision log.
"""

from __future__ import annotations

import asyncio
import tempfile
from dataclasses import asdict, dataclass
from pathlib import Path
from time import perf_counter

from repro.errors import SimulationError
from repro.serve.httpd import HTTPServer, http_request
from repro.serve.service import QueryService, ServeConfig, journal_serve_config

__all__ = [
    "ServeBenchConfig",
    "serve_bench",
    "serve_smoke",
    "serve_kill_resume_smoke",
    "percentile",
]


@dataclass(frozen=True)
class ServeBenchConfig:
    """Shape of one ``serve-bench`` run."""

    #: Wall seconds per stream minute (0.02 → a stream minute every 20 ms).
    seconds_per_minute: float = 0.02
    #: Queries in the sustained-rate phase.
    baseline_queries: int = 12
    #: Queries in the burst phase.
    overload_queries: int = 12
    #: Baseline inter-arrival gap (stream minutes).
    baseline_interarrival: float = 1.0
    #: Overload inter-arrival gap — half the baseline = 2× the rate.
    overload_interarrival: float = 0.5
    #: Service knobs (kept small so the GA fits inside the compressed band).
    num_templates: int = 8
    ga_generations: int = 10
    seed: int = 11
    window: float = 2.0
    max_pending: int = 6
    #: High enough that low-value templates shed at admission (the floor
    #: is an *ideal-conditions* bound, so shedding is load-independent;
    #: the load response under overload is deferral against max_pending).
    iv_floor: float = 0.05


def percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile (``fraction`` in [0, 1]) of ``values``."""
    if not values:
        raise SimulationError("percentile of an empty sample")
    ordered = sorted(values)
    rank = min(len(ordered) - 1, max(0, round(fraction * (len(ordered) - 1))))
    return ordered[rank]


async def _drive_phase(
    host: str,
    port: int,
    count: int,
    interarrival_minutes: float,
    seconds_per_minute: float,
    num_templates: int,
    template_offset: int = 0,
) -> dict:
    """Submit ``count`` queries at a fixed rate; gather latency + outcomes.

    Submissions are staggered on the *wall* schedule the stream rate
    implies; each request blocks until its query completes (or is shed),
    so the measured latency is the end-to-end number a live dashboard
    client would see.
    """

    async def one(index: int) -> tuple[dict, float]:
        await asyncio.sleep(index * interarrival_minutes * seconds_per_minute)
        started = perf_counter()
        status, body = await http_request(
            host, port, "POST", "/submit",
            {"template": (template_offset + index) % num_templates},
        )
        elapsed = perf_counter() - started
        if status != 200:
            raise SimulationError(f"submit failed: HTTP {status} {body!r}")
        return body, elapsed

    phase_started = perf_counter()
    outcomes = await asyncio.gather(*(one(i) for i in range(count)))
    phase_seconds = perf_counter() - phase_started

    completed = [body for body, _ in outcomes if body["outcome"] == "completed"]
    shed = [body for body, _ in outcomes if body["outcome"] == "shed"]
    latencies_ms = [
        elapsed * 1e3 for body, elapsed in outcomes
        if body["outcome"] == "completed"
    ]
    return {
        "queries": count,
        "interarrival_minutes": interarrival_minutes,
        "completed": len(completed),
        "shed": len(shed),
        "shed_rate": round(len(shed) / count, 4),
        "qps": round(count / phase_seconds, 2),
        "iv_total": round(sum(body["iv"] for body in completed), 6),
        "latency_p50_ms": round(percentile(latencies_ms, 0.50), 2),
        "latency_p95_ms": round(percentile(latencies_ms, 0.95), 2),
        "latency_p99_ms": round(percentile(latencies_ms, 0.99), 2),
    }


async def serve_bench(config: ServeBenchConfig | None = None) -> dict:
    """Run the two-phase load bench; returns the ``BENCH_serve`` dict."""
    config = config or ServeBenchConfig()
    service = QueryService(ServeConfig(
        seconds_per_minute=config.seconds_per_minute,
        window=config.window,
        max_pending=config.max_pending,
        iv_floor=config.iv_floor,
        num_templates=config.num_templates,
        seed=config.seed,
        ga_generations=config.ga_generations,
    ))
    server = HTTPServer(service, port=0)
    await server.start()
    host, port = server.address
    try:
        baseline = await _drive_phase(
            host, port, config.baseline_queries,
            config.baseline_interarrival, config.seconds_per_minute,
            config.num_templates,
        )
        overload = await _drive_phase(
            host, port, config.overload_queries,
            config.overload_interarrival, config.seconds_per_minute,
            config.num_templates, template_offset=config.baseline_queries,
        )
    finally:
        await server.stop()

    violations = service.check_trace()
    replayed = service.replay()
    replay_equal = replayed.decisions == service.session.decisions
    stats = service.session.stats
    return {
        "config": asdict(config),
        "baseline": baseline,
        "overload": overload,
        "admission": {
            "submitted": stats.submitted,
            "admitted": stats.admitted,
            "shed": stats.shed,
            "deferred": stats.deferred,
            "requeued": stats.requeued,
            "dispatched": stats.dispatched,
            "reopt_seconds": round(stats.reopt_seconds, 4),
            "windows": stats.windows,
        },
        "trace": {
            "records": len(service.tracer.records),
            "violations": len(violations),
            "decisions": len(service.session.decisions),
            "replay_equal": replay_equal,
        },
    }


async def serve_smoke(queries: int = 5) -> int:
    """A tiny end-to-end pass over every HTTP route; returns an exit code.

    Asserts the three serving contracts — all routes answer, the trace is
    checker-clean, and the SimClock replay reproduces the live decision
    log exactly.  Prints one line per check so ``make serve-smoke``
    output reads as a checklist.
    """
    service = QueryService(ServeConfig(
        seconds_per_minute=0.01, num_templates=6, ga_generations=5, seed=11,
    ))
    server = HTTPServer(service, port=0)
    await server.start()
    host, port = server.address
    failures = 0

    def check(label: str, ok: bool, detail: str = "") -> None:
        nonlocal failures
        print(f"  [{'ok' if ok else 'FAIL'}] {label}" + (f" — {detail}" if detail else ""))
        if not ok:
            failures += 1

    try:
        status, body = await http_request(host, port, "GET", "/healthz")
        check("GET /healthz", status == 200 and body.get("ok") is True)

        # One fire-and-forget submission, then fetch its result by qid.
        status, body = await http_request(
            host, port, "POST", "/submit", {"template": 0, "wait": False}
        )
        check("POST /submit wait=false", status == 200 and "qid" in body, str(body))
        qid = body.get("qid", 0)
        status, body = await http_request(host, port, "GET", f"/result/{qid}")
        check(
            "GET /result/<qid>",
            status == 200 and body.get("outcome") in ("completed", "shed"),
            str(body.get("outcome")),
        )

        # Blocking submissions, concurrently.
        results = await asyncio.gather(*(
            http_request(host, port, "POST", "/submit", {"template": i % 6})
            for i in range(1, queries)
        ))
        check(
            f"POST /submit x{queries - 1} (blocking)",
            all(status == 200 and "outcome" in body for status, body in results),
        )

        status, metrics = await http_request(host, port, "GET", "/metrics")
        check("GET /metrics", status == 200 and "counters" in metrics)
        status, page = await http_request(host, port, "GET", "/status")
        check("GET /status", status == 200 and "<html" in str(page))
        status, _ = await http_request(host, port, "GET", "/nope")
        check("GET /nope → 404", status == 404)

        status, body = await http_request(host, port, "POST", "/shutdown")
        check("POST /shutdown", status == 200 and body.get("draining") is True)
        await server.serve_until_shutdown()
    except Exception as error:
        check("HTTP session", False, repr(error))
        await server.stop()

    violations = service.check_trace()
    check("trace checker-clean", not violations,
          "; ".join(str(v) for v in violations[:3]))
    replayed = service.replay()
    check(
        "SimClock replay reproduces decisions",
        replayed.decisions == service.session.decisions,
        f"{len(service.session.decisions)} decisions",
    )
    print(f"serve-smoke: {'PASS' if failures == 0 else f'{failures} FAILURES'}")
    return 0 if failures == 0 else 1


async def serve_kill_resume_smoke(journal: str | None = None) -> int:
    """Kill a journaled live service mid-flight, resume it, assert contracts.

    Phase 1 starts a journaled service over real sockets, submits a few
    queries, checkpoints over HTTP, submits one more — then **hard-kills**
    the scheduling loop (task cancellation: no drain, no close, exactly a
    ``kill -9`` as far as the journal is concerned).  Phase 2 builds a
    fresh service with ``resume=True`` from the same journal, serves more
    traffic, drains, and asserts the durability contracts: phase-1
    results survive, the merged trace is checker-clean (including the
    ``durable.resume`` rules), and a SimClock replay of the *merged*
    arrival log reproduces the merged decision log exactly.  Returns an
    exit code for ``make serve-smoke-resume``.
    """
    perf_started = perf_counter()
    if journal is None:
        journal = str(Path(tempfile.mkdtemp(prefix="repro-serve-")) / "serve.journal")
    config = ServeConfig(
        seconds_per_minute=0.01, num_templates=6, ga_generations=5, seed=11,
    )
    failures = 0

    def check(label: str, ok: bool, detail: str = "") -> None:
        nonlocal failures
        print(f"  [{'ok' if ok else 'FAIL'}] {label}" + (f" — {detail}" if detail else ""))
        if not ok:
            failures += 1

    # -- phase 1: journaled service, killed without ceremony ---------------
    service = QueryService(config, journal=journal)
    server = HTTPServer(service, port=0)
    await server.start()
    host, port = server.address
    survivors: dict[int, dict] = {}
    try:
        results = await asyncio.gather(*(
            http_request(host, port, "POST", "/submit", {"template": i % 6})
            for i in range(3)
        ))
        for status, body in results:
            if status == 200 and body.get("outcome") == "completed":
                survivors[body["qid"]] = body
        check("phase1 submits answered", all(s == 200 for s, _ in results))
        status, body = await http_request(host, port, "POST", "/checkpoint")
        check("POST /checkpoint", status == 200 and body.get("ok") is True,
              f"pops={body.get('pops')}")
        status, body = await http_request(
            host, port, "POST", "/submit", {"template": 3, "wait": False}
        )
        check("phase1 in-flight submit", status == 200 and "qid" in body)
    finally:
        # The kill: cancel the scheduling loop dead, close only the socket.
        assert server._runner is not None
        server._runner.cancel()
        try:
            await server._runner
        except asyncio.CancelledError:
            pass
        if server._server is not None:
            server._server.close()
            await server._server.wait_closed()
    killed_pops = service._pops

    # -- phase 2: resume from the journal ----------------------------------
    resumed = QueryService(
        journal_serve_config(journal), journal=journal, resume=True,
    )
    check(
        "resume recovered the kill point",
        resumed.resumed_at_pops == killed_pops,
        f"pops={resumed.resumed_at_pops}",
    )
    server2 = HTTPServer(resumed, port=0)
    await server2.start()
    host, port = server2.address
    try:
        status, body = await http_request(
            host, port, "POST", "/submit", {"template": 4}
        )
        check("phase2 submit after resume", status == 200 and "outcome" in body)
        status, body = await http_request(host, port, "POST", "/shutdown")
        check("POST /shutdown", status == 200)
        await server2.serve_until_shutdown()
    except Exception as error:  # pragma: no cover - smoke diagnostics
        check("phase2 HTTP session", False, repr(error))
        await server2.stop()

    for qid, payload in survivors.items():
        check(
            f"phase1 result qid={qid} survived the kill",
            resumed.results.get(qid) == payload,
        )
    violations = resumed.check_trace()
    check("merged trace checker-clean", not violations,
          "; ".join(str(v) for v in violations[:3]))
    replayed = resumed.replay()
    check(
        "SimClock replay reproduces merged decisions",
        replayed.decisions == resumed.session.decisions,
        f"{len(resumed.session.decisions)} decisions",
    )
    check(
        "every resumed ledger entry recomputes bit-equal",
        all(e.recompute_iv() == e.reported_iv for e in resumed.ledgers),
        f"{len(resumed.ledgers)} entries",
    )
    elapsed = perf_counter() - perf_started
    print(
        f"serve-kill-resume: {'PASS' if failures == 0 else f'{failures} FAILURES'}"
        f" ({elapsed:.1f}s, journal={journal})"
    )
    return 0 if failures == 0 else 1
