"""Table views: union-all over member tables.

The TPC-H setup splits LineItem into partitions; engine-level queries still
want to see one logical ``lineitem``.  A :class:`UnionTable` presents the
concatenation of its member tables without copying any rows — scans chain
the members, statistics aggregate over all of them.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.engine.schema import TableSchema
from repro.engine.table import Table
from repro.errors import EngineError

__all__ = ["UnionTable"]


class UnionTable(Table):
    """A read-only union-all view over tables with identical columns."""

    def __init__(self, schema: TableSchema, members: Sequence[Table]) -> None:
        if not members:
            raise EngineError("UnionTable needs at least one member")
        for member in members:
            if member.schema.column_names != schema.column_names:
                raise EngineError(
                    f"member {member.schema.name!r} columns do not match "
                    f"view {schema.name!r}"
                )
        super().__init__(schema)
        self._members = list(members)

    @property
    def members(self) -> list[Table]:
        """The underlying member tables."""
        return list(self._members)

    # -- read path (delegates to members) -----------------------------------

    @property
    def row_count(self) -> int:
        """Total rows across all members."""
        return sum(member.row_count for member in self._members)

    @property
    def size_bytes(self) -> int:
        """Total approximate size across all members."""
        return sum(member.size_bytes for member in self._members)

    def rows(self) -> Iterator[tuple]:
        """Chain the members' rows."""
        for member in self._members:
            yield from member.rows()

    def column_values(self, name: str) -> list:
        """Concatenate one column across members."""
        self.schema.index_of(name)  # validate against the view schema
        values: list = []
        for member in self._members:
            values.extend(member.column_values(name))
        return values

    def __iter__(self) -> Iterator[tuple]:
        return self.rows()

    def __len__(self) -> int:
        return self.row_count

    # -- mutation is disallowed ----------------------------------------------

    def insert(self, row, validate: bool = True) -> None:
        """Views are read-only; insert into a member table instead."""
        raise EngineError(
            f"UnionTable {self.schema.name!r} is read-only; "
            "insert into a member table"
        )
