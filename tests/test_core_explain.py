"""Unit tests: the route-comparison explanation API."""

from __future__ import annotations

import pytest

from repro.core.explain import explain_choice
from repro.core.value import DiscountRates
from repro.federation.catalog import Catalog, FixedSyncSchedule, TableDef
from repro.federation.costmodel import StaticCostProvider
from repro.workload.query import DSSQuery


class TestExplainOnFig4:
    def test_chosen_beats_every_alternative(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        comparison = explain_choice(query, catalog, provider, rates, 11.0)
        for label in comparison.alternatives:
            assert comparison.margin_over(label) >= -1e-12, label

    def test_alternatives_present_under_full_replication(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        comparison = explain_choice(query, catalog, provider, rates, 11.0)
        assert set(comparison.alternatives) == {
            "all-remote", "all-replica", "delayed-replica",
        }

    def test_delayed_alternative_starts_at_next_sync(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        comparison = explain_choice(query, catalog, provider, rates, 11.0)
        delayed = comparison.alternatives["delayed-replica"]
        assert delayed.start_time == pytest.approx(12.5)  # T4's next sync
        assert delayed.delayed

    def test_chosen_label_detects_canonical_route(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        # Right after every replica synced, all-replica is unbeatable.
        comparison = explain_choice(query, catalog, provider, rates, 16.05)
        assert comparison.chosen_label in {"all-replica", "custom-mix"}
        if comparison.chosen_label == "all-replica":
            assert comparison.margin_over("all-replica") == pytest.approx(0.0)

    def test_table_rendering_marks_chosen_first(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        comparison = explain_choice(query, catalog, provider, rates, 11.0)
        table = comparison.as_table()
        assert table.rows[0][0].startswith("CHOSEN")
        assert len(table.rows) == 1 + len(comparison.alternatives)


class TestExplainPartialReplication:
    def test_no_all_replica_without_full_replication(self):
        catalog = Catalog()
        catalog.add_table(TableDef("r", site=0, row_count=1_000))
        catalog.add_table(TableDef("b", site=1, row_count=1_000))
        catalog.add_replica("r", FixedSyncSchedule([1.0], tail_period=5.0))
        provider = StaticCostProvider(catalog, {0: 1.0, 1: 2.0, 2: 4.0})
        rates = DiscountRates.symmetric(0.05)
        query = DSSQuery(query_id=1, name="q", tables=("r", "b"))
        comparison = explain_choice(query, catalog, provider, rates, 3.0)
        assert "all-replica" not in comparison.alternatives
        assert "all-remote" in comparison.alternatives
        # The delayed alternative still keeps the base-only table remote.
        delayed = comparison.alternatives["delayed-replica"]
        assert "b" in delayed.remote_tables

    def test_no_delay_alternative_without_any_replica(self):
        catalog = Catalog()
        catalog.add_table(TableDef("b", site=0, row_count=1_000))
        provider = StaticCostProvider(catalog, {0: 1.0, 1: 2.0})
        rates = DiscountRates.symmetric(0.05)
        query = DSSQuery(query_id=1, name="q", tables=("b",))
        comparison = explain_choice(query, catalog, provider, rates, 3.0)
        assert set(comparison.alternatives) == {"all-remote"}
        assert comparison.chosen_label == "all-remote"
