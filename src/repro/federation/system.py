"""The federated DSS system façade.

Wires together the catalog, sites, network, cost model, replication
manager, a plan router (IVQP or a baseline) and the executor, and exposes
the two operations experiments need: submit queries (at arrival times) and
run the simulation.
"""

from __future__ import annotations

import typing
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.core.plan import QueryPlan
from repro.core.value import DiscountRates
from repro.engine.planner import Database
from repro.errors import ConfigError
from repro.federation.catalog import Catalog, SyncSchedule, TableDef
from repro.federation.costmodel import CostModel, CostParameters
from repro.federation.executor import ExecutionPolicy, PlanExecutor, QueryOutcome
from repro.federation.faults import FaultInjector, FaultPlan
from repro.federation.network import NetworkModel
from repro.obs.profile import PROFILER
from repro.federation.site import LOCAL_SITE_ID, Site
from repro.federation.sync import ReplicationManager, build_schedules
from repro.sim.monitor import Monitor
from repro.sim.rng import RandomSource
from repro.sim.scheduler import Simulator
from repro.sim.trace import Tracer

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.query import DSSQuery

__all__ = ["Router", "TableSpec", "SystemConfig", "FederatedSystem", "build_system"]


class Router(typing.Protocol):
    """Chooses an execution plan for a query at submission time."""

    def choose_plan(self, query: "DSSQuery", submitted_at: float) -> QueryPlan:
        """Return the plan to execute."""
        ...  # pragma: no cover - protocol


#: Factory signature used to plug in IVQP or a baseline router.
RouterFactory = Callable[[Catalog, CostModel, DiscountRates], Router]


@dataclass(frozen=True)
class TableSpec:
    """Declarative description of one base table."""

    name: str
    site: int
    row_count: int
    row_bytes: int = 64


@dataclass
class SystemConfig:
    """Everything needed to build a :class:`FederatedSystem`."""

    tables: Sequence[TableSpec]
    replicated: Sequence[str]
    sync_mode: str = "shared"  # periodic | exponential | shared
    sync_mean_interval: float = 5.0
    rates: DiscountRates = field(default_factory=lambda: DiscountRates(0.01, 0.01))
    network: NetworkModel = field(default_factory=NetworkModel)
    cost_params: CostParameters = field(default_factory=CostParameters)
    local_capacity: int = 2
    remote_capacity: int = 1
    qos_max_staleness: float | None = None
    seed: int = 0
    engine_db: Database | None = None
    trace: bool = False  # record a Tracer timeline of system events
    #: Optional pre-scheduled faults; when set, a FaultInjector is wired
    #: through the replication manager, the executor and (for routers that
    #: support it) degraded-mode planning.
    fault_plan: FaultPlan | None = None
    #: Retry/timeout/failover behaviour of the executor under faults.
    execution_policy: ExecutionPolicy | None = None

    def __post_init__(self) -> None:
        names = [spec.name for spec in self.tables]
        if len(set(names)) != len(names):
            raise ConfigError("duplicate table names in system config")
        unknown = set(self.replicated) - set(names)
        if unknown:
            raise ConfigError(f"replicated tables not defined: {sorted(unknown)}")


class FederatedSystem:
    """A running hybrid federation: local DSS server + remote servers."""

    def __init__(
        self,
        sim: Simulator,
        catalog: Catalog,
        sites: dict[int, Site],
        cost_model: CostModel,
        router: Router,
        replication: ReplicationManager,
        rates: DiscountRates,
        tracer: Tracer | None = None,
        injector: FaultInjector | None = None,
        policy: ExecutionPolicy | None = None,
    ) -> None:
        self.sim = sim
        self.catalog = catalog
        self.sites = sites
        self.cost_model = cost_model
        self.router = router
        self.replication = replication
        self.rates = rates
        self.injector = injector
        self.executor = PlanExecutor(
            sim,
            catalog,
            sites,
            policy=policy,
            faults=injector,
            cost_provider=cost_model,
            tracer=tracer,
        )
        self.iv_monitor = Monitor("information-value")
        self.cl_monitor = Monitor("computational-latency")
        self.sl_monitor = Monitor("synchronization-latency")
        self.tracer = tracer
        #: The online scheduler's decision after
        #: :meth:`submit_workload_online` (``None`` for batch submission).
        self.online = None
        self._submitted = 0
        if tracer is not None:
            replication.tracer = tracer
            if injector is not None:
                injector.tracer = tracer

    # -- operations ----------------------------------------------------------

    def submit(self, query: "DSSQuery", at: float | None = None) -> None:
        """Submit a query (now, or at an absolute future time)."""
        when = self.sim.now if at is None else float(at)
        if when < self.sim.now:
            raise ConfigError(
                f"cannot submit {query.name!r} in the past "
                f"({when} < now {self.sim.now})"
            )
        self._submitted += 1
        self.sim.process(self._submission(query, when), name=f"submit:{query.name}")

    def _submission(self, query: "DSSQuery", when: float):
        if when > self.sim.now:
            yield self.sim.timeout(when - self.sim.now)
        if self.tracer is not None:
            self.tracer.emit("submit", query.name, qid=query.query_id)
        plan = self.router.choose_plan(query, self.sim.now)
        if self.tracer is not None:
            # Exact (unrounded) estimates: the trace is an audit record, and
            # the checker compares event details to the ledger bit-for-bit.
            self.tracer.emit(
                "plan", query.name,
                qid=query.query_id,
                remote=",".join(sorted(plan.remote_tables)) or "-",
                start=plan.start_time,
                est_iv=plan.information_value,
            )
        # Execution events (exec.start … complete/failed + ledger) are
        # emitted by the executor, which owns the phase timestamps.
        outcome = yield self.executor.execute(plan)
        self.iv_monitor.observe(outcome.information_value)
        self.cl_monitor.observe(outcome.computational_latency)
        self.sl_monitor.observe(outcome.synchronization_latency)

    def submit_workload(self, workload) -> None:
        """Submit every query of a workload at its arrival time."""
        for query in workload.sorted_by_arrival():
            self.submit(query, at=workload.arrival_of(query.query_id))

    def submit_workload_mqo(self, workload, ga_config=None, seed: int = 0):
        """Schedule a workload with MQO, then realize it in this simulation.

        Runs the Section 3.2 pipeline — conflict grouping, GA ordering,
        per-query plan selection — against this system's own catalog and
        cost model, swaps the router for a replay of the decided plans, and
        submits the workload.  Returns the analytic
        :class:`~repro.mqo.scheduler.ScheduleDecision` so callers can
        compare planned against realized outcomes after :meth:`run`.
        """
        from repro.baselines.replay import ReplayRouter
        from repro.mqo.scheduler import WorkloadScheduler

        scheduler = WorkloadScheduler(
            self.catalog,
            self.cost_model,
            self.rates,
            ga_config=ga_config,
            seed=seed,
            tracer=self.tracer,
        )
        decision = scheduler.schedule(workload)
        self.router = ReplayRouter.from_assignments(
            decision.result.assignments, enforce_schedule=True
        )
        self.submit_workload(workload)
        return decision

    def submit_workload_online(
        self, workload, config=None, ga_config=None, seed: int = 0
    ):
        """Stream a workload through the rolling-window online scheduler.

        Replays the workload's arrival stream through
        :class:`~repro.mqo.online.OnlineMQOScheduler` — admission control,
        rolling re-optimization windows, warm-started GAs — then realizes
        the decided schedule in this simulation via a replaying router.
        Queries shed by admission control are *not* submitted (they never
        execute and produce no outcome).  Returns the
        :class:`~repro.mqo.online.OnlineDecision`, also kept on
        :attr:`online` for metrics/reporting.
        """
        from repro.baselines.replay import ReplayRouter
        from repro.mqo.online import OnlineMQOScheduler

        scheduler = OnlineMQOScheduler(
            self.catalog,
            self.cost_model,
            self.rates,
            ga_config=ga_config,
            seed=seed,
            tracer=self.tracer,
            config=config,
        )
        with PROFILER.scope("online.schedule"):
            decision = scheduler.run(workload)
        self.online = decision
        self.router = ReplayRouter.from_assignments(
            decision.result.assignments, enforce_schedule=True
        )
        executed = {
            assignment.query.query_id
            for assignment in decision.result.assignments
        }
        for query in workload.sorted_by_arrival():
            if query.query_id in executed:
                self.submit(query, at=workload.arrival_of(query.query_id))
        return decision

    def run(self, until: float | None = None) -> None:
        """Start replication and advance the simulation."""
        with PROFILER.scope("system.run"):
            self.replication.start()
            if until is None:
                self._drain()
            else:
                self.sim.run(until=until)

    def _drain(self) -> None:
        """Run until all submitted queries have completed.

        Replication processes loop forever, so a plain ``run()`` would never
        return; instead step until the outcome count catches up.
        """
        guard = 0
        while len(self.outcomes) < self._submitted:
            self.sim.step()
            guard += 1
            if guard > 50_000_000:  # pragma: no cover - runaway guard
                raise ConfigError("simulation failed to drain the workload")
        # Flush the remaining events of this instant (monitor observations
        # ride on process resumptions scheduled at the completion time).
        while self.sim.peek() <= self.sim.now:
            self.sim.step()

    # -- results -----------------------------------------------------------------

    @property
    def outcomes(self) -> list[QueryOutcome]:
        """All completed query outcomes, in completion order."""
        return self.executor.outcomes

    @property
    def ledger(self):
        """The IV audit ledger (empty unless built with ``trace=True``)."""
        return self.executor.ledger

    def metrics(self):
        """Unified metrics registry snapshot of this system's statistics."""
        from repro.obs.metrics import registry_from_system

        return registry_from_system(self)

    @property
    def mean_information_value(self) -> float:
        """Mean realized IV over completed queries."""
        return self.iv_monitor.mean

    @property
    def mean_computational_latency(self) -> float:
        """Mean realized CL over completed queries."""
        return self.cl_monitor.mean

    @property
    def mean_synchronization_latency(self) -> float:
        """Mean realized SL over completed queries."""
        return self.sl_monitor.mean

    # -- fault accounting --------------------------------------------------

    @property
    def total_retries(self) -> int:
        """Remote-leg retries consumed across all outcomes."""
        return sum(outcome.retries for outcome in self.outcomes)

    @property
    def total_failovers(self) -> int:
        """Failover re-plans across all outcomes."""
        return sum(outcome.failovers for outcome in self.outcomes)

    @property
    def degraded_count(self) -> int:
        """Outcomes that needed any fault handling."""
        return sum(1 for outcome in self.outcomes if outcome.degraded)

    @property
    def failed_count(self) -> int:
        """Queries that produced no result (IV 0)."""
        return sum(1 for outcome in self.outcomes if outcome.failed)

    @property
    def fault_stats(self):
        """The injector's counters, or ``None`` without fault injection."""
        return self.injector.stats if self.injector is not None else None


def build_system(
    config: SystemConfig,
    router_factory: RouterFactory,
    sim: Simulator | None = None,
    schedules: dict[str, SyncSchedule] | None = None,
) -> FederatedSystem:
    """Construct a :class:`FederatedSystem` from a declarative config.

    Parameters
    ----------
    config:
        Tables, replication choices, rates and calibration constants.
    router_factory:
        Builds the plan router — IVQP (:func:`repro.baselines.ivqp_router`)
        or one of the Section 4.1 baselines.
    sim:
        Optional existing simulator (a fresh one is created otherwise).
    schedules:
        Optional pre-built sync schedules keyed by table name; by default
        schedules are derived from ``config.sync_mode`` and
        ``config.sync_mean_interval``.
    """
    sim = sim or Simulator()
    source = RandomSource(config.seed, "system")

    catalog = Catalog()
    site_ids = set()
    for spec in config.tables:
        catalog.add_table(
            TableDef(spec.name, spec.site, spec.row_count, spec.row_bytes)
        )
        site_ids.add(spec.site)

    if config.replicated:
        if schedules is None:
            schedules = build_schedules(
                list(config.replicated),
                mode=config.sync_mode,
                mean_interval=config.sync_mean_interval,
                source=source,
            )
        for name in config.replicated:
            catalog.add_replica(name, schedules[name])

    sites = {
        LOCAL_SITE_ID: Site(
            sim, LOCAL_SITE_ID, capacity=config.local_capacity
        )
    }
    for site_id in sorted(site_ids):
        sites[site_id] = Site(sim, site_id, capacity=config.remote_capacity)

    cost_model = CostModel(
        catalog,
        network=config.network,
        params=config.cost_params,
        engine_db=config.engine_db,
    )
    router = router_factory(catalog, cost_model, config.rates)

    injector = None
    if config.fault_plan is not None:
        # The sync-failure model needs to know which site sources each
        # replicated table; fill it in from the catalog when unset.
        if not config.fault_plan.table_sites:
            config.fault_plan.table_sites = {
                spec.name: spec.site
                for spec in config.tables
                if spec.name in set(config.replicated)
            }
        injector = FaultInjector(
            sim, config.fault_plan, sites=sites, network=config.network
        )
        # Routers that support degraded-mode planning (the IVQP optimizer)
        # get the scheduled-fault view; baselines simply ignore it.
        if hasattr(router, "availability"):
            router.availability = config.fault_plan

    replication = ReplicationManager(
        sim,
        catalog,
        qos_max_staleness=config.qos_max_staleness,
        injector=injector,
    )
    tracer = Tracer(lambda: sim.now) if config.trace else None
    return FederatedSystem(
        sim=sim,
        catalog=catalog,
        sites=sites,
        cost_model=cost_model,
        router=router,
        replication=replication,
        rates=config.rates,
        tracer=tracer,
        injector=injector,
        policy=config.execution_policy,
    )
