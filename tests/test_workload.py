"""Unit tests: DSS queries, workloads, TPC-H query set, generators, arrivals."""

from __future__ import annotations

import pytest

from repro.core.value import DiscountRates
from repro.errors import WorkloadError
from repro.workload.arrival import ArrivalProcess, poisson_arrivals
from repro.workload.generator import overlapping_workload, random_queries
from repro.workload.query import DSSQuery, Workload
from repro.workload.tpch_queries import TPCH_FOOTPRINTS, tpch_queries, tpch_query
from repro.sim.streams import DeterministicStream


def make_query(query_id=1, name="q", tables=("a", "b")) -> DSSQuery:
    return DSSQuery(query_id=query_id, name=name, tables=tables)


class TestDSSQuery:
    def test_requires_tables(self):
        with pytest.raises(WorkloadError):
            make_query(tables=())

    def test_rejects_duplicate_tables(self):
        with pytest.raises(WorkloadError):
            make_query(tables=("a", "a"))

    def test_rejects_nonpositive_business_value(self):
        with pytest.raises(WorkloadError):
            DSSQuery(query_id=1, name="q", tables=("a",), business_value=0.0)

    def test_rejects_nonpositive_base_work(self):
        with pytest.raises(WorkloadError):
            DSSQuery(query_id=1, name="q", tables=("a",), base_work=-1.0)

    def test_with_rates_and_value_copy(self):
        query = make_query()
        rates = DiscountRates(0.1, 0.2)
        updated = query.with_rates(rates).with_value(3.0)
        assert updated.rates == rates
        assert updated.business_value == 3.0
        assert query.rates is None  # original untouched

    def test_identity_semantics(self):
        a = make_query()
        b = make_query()
        assert a != b
        assert len({a, b}) == 2

    def test_table_set(self):
        assert make_query().table_set() == frozenset({"a", "b"})


class TestWorkload:
    def test_add_and_lookup(self):
        workload = Workload()
        workload.add(make_query(1), arrival=5.0)
        workload.add(make_query(2, name="q2"))
        assert workload.arrival_of(1) == 5.0
        assert workload.arrival_of(2) == 0.0
        assert workload.query(2).name == "q2"
        assert len(workload) == 2

    def test_duplicate_id_rejected(self):
        workload = Workload()
        workload.add(make_query(1))
        with pytest.raises(WorkloadError):
            workload.add(make_query(1, name="other"))

    def test_duplicate_id_rejected_at_construction(self):
        # Regression: constructing Workload(queries=[...]) bypassed add()
        # and its duplicate check, so a duplicate id silently shadowed the
        # earlier query in lookups.
        with pytest.raises(WorkloadError):
            Workload(queries=[make_query(1), make_query(1, name="shadow")])

    def test_lookup_is_indexed_after_direct_list_mutation(self):
        # The lazy index must rebuild when the queries list is mutated
        # directly (not through add()).
        workload = Workload()
        workload.add(make_query(1))
        assert workload.query(1).name == "q"
        workload.queries.append(make_query(2, name="late"))
        assert workload.query(2).name == "late"

    def test_arrival_of_unknown_id_raises(self):
        # Regression: arrival_of() returned 0.0 for ids not in the
        # workload, disguising wiring mistakes as "arrived at t=0".
        workload = Workload()
        workload.add(make_query(1), arrival=5.0)
        with pytest.raises(WorkloadError):
            workload.arrival_of(99)

    def test_negative_arrival_rejected(self):
        workload = Workload()
        with pytest.raises(WorkloadError):
            workload.add(make_query(1), arrival=-1.0)

    def test_missing_query_raises(self):
        with pytest.raises(WorkloadError):
            Workload().query(9)

    def test_sorted_by_arrival(self):
        workload = Workload()
        workload.add(make_query(1), arrival=9.0)
        workload.add(make_query(2), arrival=1.0)
        assert [q.query_id for q in workload.sorted_by_arrival()] == [2, 1]

    def test_tables_touched(self):
        workload = Workload()
        workload.add(make_query(1, tables=("a", "b")))
        workload.add(make_query(2, tables=("b", "c")))
        assert workload.tables_touched() == {"a", "b", "c"}

    def test_from_queries_arrival_alignment(self):
        with pytest.raises(WorkloadError):
            Workload.from_queries([make_query(1)], arrivals=[1.0, 2.0])


class TestTpchQueries:
    def test_all_22_defined(self):
        queries = tpch_queries()
        assert len(queries) == 22
        assert [q.name for q in queries] == [f"Q{i}" for i in range(1, 23)]

    def test_lineitem_expands_to_partitions(self):
        q1 = tpch_query("Q1", query_id=1, partitions=5)
        assert set(q1.tables) == {f"lineitem_p{i}" for i in range(1, 6)}

    def test_footprints_match_logical_definitions(self):
        for query in tpch_queries():
            logical_tables = set(query.logical.table_names)
            if "lineitem" in logical_tables:
                logical_tables.discard("lineitem")
                logical_tables.update(
                    name for name in query.tables if name.startswith("lineitem")
                )
            assert logical_tables == set(query.tables)

    def test_unknown_query_rejected(self):
        with pytest.raises(WorkloadError):
            tpch_query("Q99", query_id=1)

    def test_every_query_executes_on_engine(self, tpch_tiny):
        from repro.engine.planner import Planner

        planner = Planner(tpch_tiny.database)
        for query in tpch_queries(tpch_tiny):
            plan = planner.plan(query.logical)
            rows = plan.execute()
            assert isinstance(rows, list)
            assert plan.estimate.work_units > 0

    def test_footprint_table_lists_are_deduplicated(self):
        for name, footprint in TPCH_FOOTPRINTS.items():
            assert len(set(footprint)) == len(footprint), name


class TestRandomQueries:
    def test_count_and_table_limits(self, synthetic_schema_only):
        queries = random_queries(synthetic_schema_only, count=30, max_tables=6)
        assert len(queries) == 30
        assert all(1 <= len(q.tables) <= 6 for q in queries)

    def test_tables_exist_in_instance(self, synthetic_schema_only):
        queries = random_queries(synthetic_schema_only, count=10)
        names = set(synthetic_schema_only.table_names)
        for query in queries:
            assert set(query.tables) <= names

    def test_base_work_tracks_row_counts(self, synthetic_schema_only):
        queries = random_queries(synthetic_schema_only, count=10)
        for query in queries:
            expected = sum(
                synthetic_schema_only.row_counts[name] for name in query.tables
            )
            assert query.base_work == pytest.approx(max(expected, 1.0))

    def test_determinism(self, synthetic_schema_only):
        a = random_queries(synthetic_schema_only, count=5, seed=2)
        b = random_queries(synthetic_schema_only, count=5, seed=2)
        assert [q.tables for q in a] == [q.tables for q in b]

    def test_validation(self, synthetic_schema_only):
        with pytest.raises(WorkloadError):
            random_queries(synthetic_schema_only, count=0)


class TestOverlappingWorkload:
    def test_rate_zero_spreads_everyone(self, synthetic_schema_only):
        queries = random_queries(synthetic_schema_only, count=6)
        workload = overlapping_workload(queries, 0.0, spread_gap=50.0)
        arrivals = sorted(workload.arrivals.values())
        gaps = [b - a for a, b in zip(arrivals, arrivals[1:])]
        assert all(gap >= 49.0 for gap in gaps)

    def test_rate_one_clusters_in_bursts(self, synthetic_schema_only):
        queries = random_queries(synthetic_schema_only, count=6)
        workload = overlapping_workload(
            queries, 1.0, burst_size=6, burst_window=2.0
        )
        arrivals = sorted(workload.arrivals.values())
        assert arrivals[-1] - arrivals[0] <= 2.0

    def test_invalid_rate(self, synthetic_schema_only):
        queries = random_queries(synthetic_schema_only, count=3)
        with pytest.raises(WorkloadError):
            overlapping_workload(queries, 1.5)

    def test_every_query_gets_an_arrival(self, synthetic_schema_only):
        queries = random_queries(synthetic_schema_only, count=9)
        workload = overlapping_workload(queries, 0.4)
        assert len(workload.arrivals) == 9


class TestArrivals:
    def test_deterministic_stream_arrivals(self):
        process = ArrivalProcess(DeterministicStream(2.0))
        assert process.take(3) == [2.0, 4.0, 6.0]

    def test_start_offset(self):
        process = ArrivalProcess(DeterministicStream(1.0), start=10.0)
        assert process.next_arrival() == 11.0

    def test_negative_start_rejected(self):
        with pytest.raises(WorkloadError):
            ArrivalProcess(DeterministicStream(1.0), start=-1.0)

    def test_poisson_arrivals_monotone(self):
        arrivals = poisson_arrivals(5.0, 50, seed=1)
        assert len(arrivals) == 50
        assert all(b > a for a, b in zip(arrivals, arrivals[1:]))

    def test_poisson_reproducible(self):
        assert poisson_arrivals(5.0, 10, seed=1) == poisson_arrivals(5.0, 10, seed=1)

    def test_iteration(self):
        process = ArrivalProcess(DeterministicStream(3.0))
        iterator = iter(process)
        assert next(iterator) == 3.0
        assert next(iterator) == 6.0
