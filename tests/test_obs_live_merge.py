"""Registry shipping and merging: state round-trips + the fleet property.

The load-bearing property (ISSUE satellite): partitioning one
checker-clean trace into pseudo-shards, folding each partition into its
own :class:`LiveRegistry`, shipping every registry through a JSON
``state_dict`` round-trip and merging, must reproduce the single-process
fold of the full trace — counters and histogram buckets **exactly**,
EWMAs to float rounding, and P² sketch estimates within their documented
pooled bound.
"""

from __future__ import annotations

import json
import random

import pytest

from repro.errors import SimulationError
from repro.obs import events
from repro.obs.live import (
    EwmaMean,
    EwmaRate,
    LiveRegistry,
    P2Quantile,
    TableSyncState,
    WindowCounter,
)
from repro.obs.metrics import Histogram

from tests.test_obs_checker import traced_system


class TestEwmaRateMerge:
    def test_disjoint_streams_merge_to_union_fold(self):
        union = EwmaRate(half_life=5.0)
        even, odd = EwmaRate(half_life=5.0), EwmaRate(half_life=5.0)
        for tick in range(40):
            time = 0.5 * tick
            union.observe(time)
            (even if tick % 2 == 0 else odd).observe(time)
        merged = EwmaRate.merge([even, odd])
        assert merged.rate(20.0) == pytest.approx(union.rate(20.0), rel=1e-12)

    def test_mismatched_half_lives_rejected(self):
        with pytest.raises(SimulationError):
            EwmaRate.merge([EwmaRate(1.0), EwmaRate(2.0)])

    def test_state_round_trip_preserves_rate(self):
        rate = EwmaRate(half_life=3.0)
        for time in (1.0, 2.5, 4.0):
            rate.observe(time)
        rebuilt = EwmaRate.from_state(json.loads(json.dumps(rate.state_dict())))
        assert rebuilt.rate(10.0) == rate.rate(10.0)


class TestEwmaMeanMerge:
    def test_disjoint_streams_merge_to_union_fold(self):
        union = EwmaMean(half_life=4.0)
        parts = [EwmaMean(half_life=4.0) for _ in range(3)]
        rng = random.Random(5)
        for tick in range(60):
            time, value = 0.25 * tick, rng.uniform(0.0, 2.0)
            union.observe(time, value)
            parts[tick % 3].observe(time, value)
        merged = EwmaMean.merge(parts)
        assert merged.mean() == pytest.approx(union.mean(), rel=1e-9)

    def test_state_round_trip_preserves_mean(self):
        mean = EwmaMean(half_life=2.0)
        mean.observe(1.0, 3.0)
        mean.observe(2.0, 5.0)
        rebuilt = EwmaMean.from_state(json.loads(json.dumps(mean.state_dict())))
        assert rebuilt.mean() == mean.mean()


class TestWindowCounterMerge:
    def test_merged_counts_equal_union_counts(self):
        union = WindowCounter(window=10.0)
        a, b = WindowCounter(window=10.0), WindowCounter(window=10.0)
        for tick in range(30):
            time = 0.7 * tick
            union.observe(time)
            (a if tick % 2 else b).observe(time)
        merged = WindowCounter.merge([a, b])
        assert merged.count(21.0) == union.count(21.0)
        assert merged.rate(21.0) == union.rate(21.0)

    def test_state_round_trip_preserves_window(self):
        counter = WindowCounter(window=5.0)
        for time in (1.0, 2.0, 4.5):
            counter.observe(time)
        rebuilt = WindowCounter.from_state(
            json.loads(json.dumps(counter.state_dict()))
        )
        assert rebuilt.count(5.0) == counter.count(5.0)


class TestHistogramMerge:
    def test_bucket_wise_addition_is_exact(self):
        bounds = (0.5, 1.0, 2.0)
        union = Histogram("h", bounds=bounds)
        a, b = Histogram("h", bounds=bounds), Histogram("h", bounds=bounds)
        rng = random.Random(11)
        for index in range(200):
            value = rng.uniform(0.0, 3.0)
            union.observe(value)
            (a if index % 2 else b).observe(value)
        a.merge_from(b)
        merged, single = a.snapshot(), union.snapshot()
        # Buckets, counts and extrema are exact; only `sum` depends on
        # float addition order (documented on merge_from).
        for key in ("bounds", "counts", "count", "min", "max"):
            assert merged[key] == single[key], key
        assert merged["sum"] == pytest.approx(single["sum"], rel=1e-12)


class TestP2QuantileMerge:
    def test_merged_estimate_within_pooled_bounds(self):
        rng = random.Random(23)
        values = [rng.lognormvariate(0.0, 0.7) for _ in range(600)]
        shards = [P2Quantile(0.95) for _ in range(3)]
        for index, value in enumerate(values):
            shards[index % 3].observe(value)
        merged = P2Quantile.merge(shards)
        assert min(values) <= merged.value() <= max(values)
        # And near the exact quantile for a well-behaved distribution.
        exact = sorted(values)[int(0.95 * len(values))]
        assert merged.value() == pytest.approx(exact, rel=0.25)

    def test_state_round_trip_preserves_estimate(self):
        sketch = P2Quantile(0.5)
        for value in (1.0, 9.0, 2.0, 7.0, 5.0, 3.0, 8.0):
            sketch.observe(value)
        rebuilt = P2Quantile.from_state(
            json.loads(json.dumps(sketch.state_dict()))
        )
        assert rebuilt.value() == sketch.value()
        assert rebuilt.count == sketch.count


class TestTableSyncStateMerge:
    def test_freshest_frontier_wins_and_counts_sum(self):
        a, b = TableSyncState(half_life=10.0), TableSyncState(half_life=10.0)
        a.apply(now=5.0, at=4.0, gap=1.0)
        b.apply(now=7.0, at=6.0, gap=2.0)
        b.publish(scheduled=9.0)
        merged = TableSyncState.merge([a, b])
        assert merged.last_apply == 6.0
        assert merged.published == 9.0
        assert merged.last_gap == 2.0  # from the shard with the freshest apply
        assert merged.syncs == 2

    def test_state_round_trip(self):
        state = TableSyncState(half_life=10.0)
        state.apply(now=3.0, at=2.0, gap=0.5)
        rebuilt = TableSyncState.from_state(
            json.loads(json.dumps(state.state_dict()))
        )
        assert rebuilt.gauges(5.0) == state.gauges(5.0)


def pseudo_shard(records, shards: int):
    """Partition a trace by query id; shard-less events go to shard 0.

    Mirrors what conflict-group sharding guarantees: each query's whole
    lifecycle lands on exactly one shard, infrastructure events (sync,
    faults, alerts) are observed by a single worker.
    """
    partitions = [[] for _ in range(shards)]
    for record in records:
        qid = record.detail.get("qid")
        if qid is None and record.kind == events.LEDGER:
            qid = record.detail.get("query_id")
        partitions[0 if qid is None else qid % shards].append(record)
    return partitions


class TestFleetMergeProperty:
    """merge(per-shard folds) == single-process fold of the union trace."""

    @pytest.fixture(scope="class")
    def folds(self):
        system = traced_system(num_queries=8)
        records = system.tracer.records
        single = LiveRegistry()
        for record in records:
            single.observe(record)
        shards = []
        for partition in pseudo_shard(records, shards=3):
            registry = LiveRegistry()
            for record in partition:
                registry.observe(record)
            # Ship through the JSON spool representation, as a worker would.
            shards.append(
                LiveRegistry.from_state(
                    json.loads(json.dumps(registry.state_dict()))
                )
            )
        return single, LiveRegistry.merge(shards), records

    def test_counters_exact(self, folds):
        single, merged, _ = folds
        assert merged.counters == single.counters
        assert merged.final_counters() == single.final_counters()

    def test_histogram_buckets_exact(self, folds):
        single, merged, _ = folds
        single_hists = single.snapshot()["histograms"]
        merged_hists = merged.snapshot()["histograms"]
        assert set(merged_hists) == set(single_hists)
        for name, data in single_hists.items():
            for key in ("bounds", "counts", "count", "min", "max"):
                assert merged_hists[name][key] == data[key], (name, key)
            # `sum` is exact up to float addition order (merge_from doc).
            assert merged_hists[name]["sum"] == pytest.approx(
                data["sum"], rel=1e-12
            ), name

    def test_rates_and_windows_match_union_fold(self, folds):
        single, merged, _ = folds
        now = single.now
        assert merged.now == now
        single_rates = single.snapshot(now)["rates"]
        merged_rates = merged.snapshot(now)["rates"]
        for name, value in single_rates.items():
            assert merged_rates[name] == pytest.approx(value, rel=1e-9), name

    def test_sketches_within_documented_bounds(self, folds):
        single, merged, records = folds
        ledger_ivs = [
            record.detail["reported_iv"]
            for record in records
            if record.kind == events.LEDGER
        ]
        ledger_cls = [
            record.detail["completed_at"] - record.detail["submitted_at"]
            for record in records
            if record.kind == events.LEDGER
        ]
        if ledger_ivs:
            assert min(ledger_ivs) <= merged.iv_p50.value() <= max(ledger_ivs)
        if ledger_cls:
            assert min(ledger_cls) <= merged.cl_p95.value() <= max(ledger_cls)
        assert merged.iv_p50.count == single.iv_p50.count

    def test_gauge_inputs_union(self, folds):
        single, merged, _ = folds
        assert merged.in_flight == single.in_flight
        assert merged.iv_realization_ratio() == pytest.approx(
            single.iv_realization_ratio(), rel=1e-12
        )
        assert merged.staleness_mean() == single.staleness_mean()

    def test_per_table_sync_state_merges(self, folds):
        single, merged, _ = folds
        single_tables = single.snapshot()["tables"]
        merged_tables = merged.snapshot()["tables"]
        assert set(merged_tables) == set(single_tables)
        for name, gauges in single_tables.items():
            # All sync events live on shard 0, so the merge is the identity
            # here; what this pins down is that table state survives the
            # ship-and-merge path at all.
            assert merged_tables[name]["sync.table.syncs"] == gauges[
                "sync.table.syncs"
            ]

    def test_merge_rejects_mismatched_configuration(self):
        with pytest.raises(SimulationError):
            LiveRegistry.merge([LiveRegistry(window=5.0), LiveRegistry(window=9.0)])

    def test_registry_state_dict_round_trip_is_lossless(self, folds):
        single, _, _ = folds
        rebuilt = LiveRegistry.from_state(
            json.loads(json.dumps(single.state_dict()))
        )
        assert rebuilt.snapshot() == single.snapshot()
