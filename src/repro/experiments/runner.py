"""Generic experiment execution helpers.

One "run" builds a fresh federated system for an approach, submits a query
stream with Poisson arrivals, drains the simulation and returns the per-run
aggregates every figure needs.
"""

from __future__ import annotations

import dataclasses
import typing
from dataclasses import dataclass, field

from repro.baselines import federation_router, ivqp_router, warehouse_router
from repro.errors import ConfigError
from repro.federation.executor import QueryOutcome
from repro.federation.system import FederatedSystem, SystemConfig, build_system
from repro.workload.arrival import poisson_arrivals
from repro.workload.query import DSSQuery, Workload

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mqo.online import OnlineConfig, OnlineDecision
    from repro.obs.ledger import IVLedgerEntry
    from repro.sim.trace import Tracer

__all__ = [
    "APPROACHES",
    "RunResult",
    "reissue_stream",
    "run_stream",
    "run_single_queries",
]

#: Router factories by approach name.  ``ivqp-partial`` is the same router
#: on the paper-literal partial-replication infrastructure (see
#: :meth:`repro.experiments.config.TpchSetup.system_config`).
APPROACHES = {
    "ivqp": ivqp_router,
    "ivqp-partial": ivqp_router,
    "federation": federation_router,
    "warehouse": warehouse_router,
}


@dataclass
class RunResult:
    """Aggregates of one simulated stream."""

    approach: str
    mean_iv: float
    mean_cl: float
    mean_sl: float
    outcomes: list[QueryOutcome]
    #: The run's tracer and IV audit ledger when tracing was requested
    #: (``trace=True`` or a ``SystemConfig`` built with ``trace=True``).
    tracer: "Tracer | None" = None
    ledger: "list[IVLedgerEntry]" = field(default_factory=list)
    #: The drained system behind the run (for metrics/checker access).
    system: FederatedSystem | None = None
    #: The online scheduler's decision when ``run_stream(online=True)``.
    online: "OnlineDecision | None" = None

    @property
    def per_query_cl(self) -> dict[str, float]:
        """Mean realized CL keyed by query name."""
        return _per_query(self.outcomes, "computational_latency")

    @property
    def per_query_sl(self) -> dict[str, float]:
        """Mean realized SL keyed by query name."""
        return _per_query(self.outcomes, "synchronization_latency")

    @property
    def per_query_iv(self) -> dict[str, float]:
        """Mean realized IV keyed by query name."""
        return _per_query(self.outcomes, "information_value")


def _per_query(outcomes: list[QueryOutcome], attribute: str) -> dict[str, float]:
    sums: dict[str, float] = {}
    counts: dict[str, int] = {}
    for outcome in outcomes:
        name = outcome.query.name
        sums[name] = sums.get(name, 0.0) + getattr(outcome, attribute)
        counts[name] = counts.get(name, 0) + 1
    return {name: sums[name] / counts[name] for name in sums}


def _build(config: SystemConfig, approach: str) -> FederatedSystem:
    try:
        factory = APPROACHES[approach]
    except KeyError:
        raise ConfigError(
            f"unknown approach {approach!r}; expected one of {sorted(APPROACHES)}"
        )
    return build_system(config, factory)


def reissue_stream(queries: list[DSSQuery], rounds: int = 1) -> list[DSSQuery]:
    """``rounds`` passes over ``queries``, re-id'd into one duplicate-free stream.

    Each submission is a :func:`dataclasses.replace` copy differing only in
    ``query_id`` — every field a :class:`DSSQuery` has (or grows later)
    survives the round trip.
    """
    if rounds < 1:
        raise ConfigError(f"rounds must be >= 1, got {rounds}")
    stream: list[DSSQuery] = []
    next_id = 1
    for _round in range(rounds):
        for query in queries:
            stream.append(dataclasses.replace(query, query_id=next_id))
            next_id += 1
    return stream


def run_stream(
    config: SystemConfig,
    approach: str,
    queries: list[DSSQuery],
    mean_interarrival: float,
    rounds: int = 1,
    arrival_seed: int = 3,
    trace: bool = False,
    online: bool = False,
    online_config: "OnlineConfig | None" = None,
    on_system: "typing.Callable[[FederatedSystem], None] | None" = None,
) -> RunResult:
    """Submit ``rounds`` passes over ``queries`` as a Poisson stream.

    ``trace=True`` turns on the observability layer for this run (span
    events + IV audit ledger) without touching the caller's config; the
    tracer and ledger come back on the :class:`RunResult`.  Tracing is
    pure bookkeeping — aggregates are bit-identical either way.

    ``online=True`` routes the stream through the rolling-window online
    MQO scheduler (:class:`~repro.mqo.online.OnlineMQOScheduler`) instead
    of per-submission routing: admission control may shed queries (they
    produce no outcome) and the decided schedule is replayed through the
    simulation.  The :class:`~repro.mqo.online.OnlineDecision` comes back
    on :attr:`RunResult.online`.

    ``on_system`` is called with the freshly built system before anything
    is submitted — the hook point where live telemetry (a
    :class:`~repro.obs.live.LiveRegistry`, an SLO monitor) subscribes to
    the tracer so it sees every event of the run.
    """
    if trace and not config.trace:
        config = dataclasses.replace(config, trace=True)
    system = _build(config, approach)
    if on_system is not None:
        on_system(system)
    stream = reissue_stream(queries, rounds)
    arrivals = poisson_arrivals(mean_interarrival, len(stream), seed=arrival_seed)
    workload = Workload.from_queries(stream, arrivals=arrivals)
    if online:
        system.submit_workload_online(workload, config=online_config)
    else:
        system.submit_workload(workload)
    system.run()
    return RunResult(
        approach=approach,
        mean_iv=system.mean_information_value,
        mean_cl=system.mean_computational_latency,
        mean_sl=system.mean_synchronization_latency,
        outcomes=system.outcomes,
        tracer=system.tracer,
        ledger=system.ledger,
        system=system,
        online=system.online,
    )


def run_single_queries(
    config: SystemConfig,
    approach: str,
    queries: list[DSSQuery],
    submit_at: float = 50.0,
) -> RunResult:
    """Run each query alone on a fresh system (uncontended latencies).

    Used by the per-query latency figures (6 and 7): one system per query,
    submitted at ``submit_at`` so replicas have gone through some
    synchronization history first.
    """
    outcomes: list[QueryOutcome] = []
    for query in queries:
        system = _build(config, approach)
        system.submit(query, at=submit_at)
        system.run()
        outcomes.extend(system.outcomes)
    count = max(len(outcomes), 1)
    return RunResult(
        approach=approach,
        mean_iv=sum(o.information_value for o in outcomes) / count,
        mean_cl=sum(o.computational_latency for o in outcomes) / count,
        mean_sl=sum(o.synchronization_latency for o in outcomes) / count,
        outcomes=outcomes,
    )
