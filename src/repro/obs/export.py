"""Trace exporters: JSONL (lossless) and chrome://tracing (visual).

JSONL is the audit format: one JSON object per record, floats encoded via
``repr`` so they round-trip bit-identically — :func:`from_jsonl` followed
by :func:`to_jsonl` is the identity, and a ledger read back from disk
recomputes the same IVs it was written with.  The chrome format
(``trace_event``, loadable in ``chrome://tracing`` or Perfetto) renders
each query as a row of duration slices (remote phase, local queue,
processing, transfer) with syncs and faults as instant events.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Sequence

from repro.errors import SimulationError
from repro.obs import events
from repro.obs.ledger import IVLedgerEntry
from repro.sim.trace import TraceRecord

__all__ = [
    "record_to_dict",
    "record_from_dict",
    "to_jsonl",
    "from_jsonl",
    "write_jsonl",
    "read_jsonl",
    "normalize",
    "to_chrome_trace",
    "ledger_from_records",
]

#: Simulation minutes -> chrome trace microseconds.
_MINUTES_TO_US = 60_000_000.0


def record_to_dict(record: TraceRecord) -> dict:
    """One record as a JSON-ready dict."""
    return {
        "time": record.time,
        "kind": record.kind,
        "subject": record.subject,
        "detail": record.detail,
    }


def record_from_dict(data: dict) -> TraceRecord:
    """Inverse of :func:`record_to_dict`."""
    try:
        return TraceRecord(
            time=data["time"],
            kind=data["kind"],
            subject=data["subject"],
            detail=dict(data.get("detail", {})),
        )
    except (KeyError, TypeError) as error:
        raise SimulationError(f"malformed trace record: {data!r}") from error


def to_jsonl(records: Iterable[TraceRecord]) -> str:
    """Serialize records, one canonical JSON object per line."""
    return "\n".join(
        json.dumps(record_to_dict(record), sort_keys=True) for record in records
    )


def from_jsonl(text: str) -> list[TraceRecord]:
    """Parse a JSONL trace back into records."""
    records = []
    for line_number, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as error:
            raise SimulationError(
                f"trace line {line_number} is not valid JSON"
            ) from error
        records.append(record_from_dict(data))
    return records


def write_jsonl(records: Iterable[TraceRecord], path: str) -> None:
    """Write a JSONL trace file."""
    with open(path, "w") as handle:
        handle.write(to_jsonl(records) + "\n")


def read_jsonl(path: str) -> list[TraceRecord]:
    """Read a JSONL trace file."""
    with open(path) as handle:
        return from_jsonl(handle.read())


def normalize(records: Iterable[TraceRecord]) -> str:
    """Canonical text form for golden-trace comparison.

    Identical runs must produce identical strings: keys are sorted, floats
    keep full ``repr`` precision (the simulation is deterministic, so any
    drift here is a real behaviour change, which is the point of the
    golden test).
    """
    return to_jsonl(records)


def ledger_from_records(records: Iterable[TraceRecord]) -> list[IVLedgerEntry]:
    """Extract the IV audit ledger embedded in a trace."""
    return [
        IVLedgerEntry.from_dict(record.detail)
        for record in records
        if record.kind == events.LEDGER
    ]


def _us(minutes: float) -> float:
    return minutes * _MINUTES_TO_US


def to_chrome_trace(
    records: Sequence[TraceRecord],
    pid: int = 1,
    process_name: str | None = None,
) -> dict:
    """Render a trace in the chrome ``trace_event`` JSON format.

    Queries become one thread each (named after the query), with complete
    ("X") slices for the ledger's phases; replicas and sites land on
    dedicated threads as instant ("i") events.  ``pid`` selects the chrome
    process every event lands on (the fleet collector gives each shard its
    own pid so shards render as separate process groups; pid 1 is the
    single-process simulation domain, pid 2 the wall-clock profiler);
    ``process_name`` emits the matching ``process_name`` metadata row.
    """
    trace_events: list[dict] = []
    tids: dict[str, int] = {}
    if process_name is not None:
        trace_events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": process_name},
        })

    def tid_for(label: str) -> int:
        if label not in tids:
            tid = len(tids) + 1
            tids[label] = tid
            trace_events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": label},
            })
        return tids[label]

    for record in records:
        if record.kind == events.LEDGER:
            entry = IVLedgerEntry.from_dict(record.detail)
            tid = tid_for(f"query {entry.query}#{entry.query_id}")
            phases = [
                ("scheduled-delay", entry.submitted_at, entry.scheduled_delay),
                ("remote", entry.started_at, entry.remote_phase),
                ("local-queue", entry.remote_done_at, entry.queue_wait),
                ("processing", entry.local_granted_at, entry.processing),
                ("transfer", entry.local_done_at, entry.transfer),
            ]
            for name, start, duration in phases:
                if duration <= 0.0:
                    continue
                trace_events.append({
                    "name": name,
                    "ph": "X",
                    "pid": pid,
                    "tid": tid,
                    "ts": _us(start),
                    "dur": _us(duration),
                    "cat": "query",
                    "args": {"query": entry.query, "qid": entry.query_id},
                })
            trace_events.append({
                "name": "iv",
                "ph": "C",  # counter track: realized IV at completion
                "pid": pid,
                "tid": tid,
                "ts": _us(entry.completed_at),
                "args": {"iv": entry.reported_iv},
            })
        elif record.kind in (
            events.SYNC_APPLY, events.SYNC_SKIP, events.SYNC_DELAY
        ):
            tid = tid_for(f"replica {record.subject}")
            trace_events.append({
                "name": record.kind,
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": tid,
                "ts": _us(record.time),
                "cat": "sync",
                "args": dict(record.detail),
            })
        elif record.kind in (events.FAULT_DOWN, events.FAULT_UP):
            tid = tid_for(record.subject)
            trace_events.append({
                "name": record.kind,
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": tid,
                "ts": _us(record.time),
                "cat": "fault",
                "args": dict(record.detail),
            })
        elif record.kind in events.QUERY_LIFECYCLE_KINDS:
            qid = record.detail.get("qid")
            tid = tid_for(f"query {record.subject}#{qid}")
            trace_events.append({
                "name": record.kind,
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": tid,
                "ts": _us(record.time),
                "cat": "lifecycle",
                "args": dict(record.detail),
            })
        else:  # MQO / unknown producers: one shared control-plane thread
            tid = tid_for("control-plane")
            trace_events.append({
                "name": f"{record.kind} {record.subject}",
                "ph": "i",
                "s": "t",
                "pid": pid,
                "tid": tid,
                "ts": _us(record.time),
                "cat": "control",
                "args": dict(record.detail),
            })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
