"""Conflict detection and workload formation (paper Section 3.2, step 1).

"For each query, we perform an query plan selection task as described
earlier and derive a range along the time axis that the query may run.  If
the ranges of more than two queries are overlapped, we group them into a
workload for the next step."

A query's *execution range* spans from its arrival to the completion of its
slowest candidate plan; queries whose ranges overlap form connected
components, each optimized as one workload.

Ranges use **half-open ``[start, end)`` semantics**: a range ends the
instant its slowest plan completes, and a query arriving at exactly that
instant cannot contend with it — the server is already free.  Two ranges
touching at a single point therefore do *not* conflict and stay in
separate workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OptimizationError
from repro.mqo.evaluator import WorkloadEvaluator

__all__ = ["ExecutionRange", "execution_ranges", "conflict_groups"]


@dataclass(frozen=True)
class ExecutionRange:
    """The half-open time range ``[start, end)`` one query may occupy."""

    query_id: int
    start: float
    end: float

    def overlaps(self, other: "ExecutionRange") -> bool:
        """Whether two ranges share a positive-length interval.

        Half-open semantics: ranges that merely touch at one instant
        (``self.end == other.start``) do not overlap.
        """
        return self.start < other.end and other.start < self.end


def execution_ranges(
    evaluator: WorkloadEvaluator,
    query_ids: list[int] | None = None,
) -> list[ExecutionRange]:
    """Derive each query's candidate execution range from its plan set.

    ``query_ids`` restricts the ranges to a subset of the workload (the
    online scheduler re-groups only not-yet-started queries); ``None``
    covers the whole workload.
    """
    if query_ids is None:
        queries = evaluator.workload.queries
    else:
        queries = [evaluator.workload.query(qid) for qid in query_ids]
    ranges = []
    for query in queries:
        arrival = evaluator.workload.arrival_of(query.query_id)
        plans = evaluator.candidates(query)
        if not plans:  # pragma: no cover - candidates never empty
            raise OptimizationError(f"no candidate plans for {query.name!r}")
        latest = max(plan.completion_time for plan in plans)
        ranges.append(ExecutionRange(query.query_id, arrival, latest))
    return ranges


def conflict_groups(ranges: list[ExecutionRange]) -> list[list[int]]:
    """Connected components of the range-overlap graph (sweep line).

    Returns groups of query ids; singleton groups are queries that never
    contend and can be planned individually.  Consistent with
    :meth:`ExecutionRange.overlaps`, a range starting exactly where the
    previous group ends opens a *new* group (half-open semantics).
    """
    ordered = sorted(ranges, key=lambda r: (r.start, r.end, r.query_id))
    groups: list[list[int]] = []
    current: list[int] = []
    current_end = float("-inf")
    for rng in ordered:
        if current and rng.start < current_end:
            current.append(rng.query_id)
            current_end = max(current_end, rng.end)
        else:
            if current:
                groups.append(current)
            current = [rng.query_id]
            current_end = rng.end
    if current:
        groups.append(current)
    return groups
