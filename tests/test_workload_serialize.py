"""Unit tests: workload JSON serialization round-trips."""

from __future__ import annotations

import json

import pytest

from repro.core.value import DiscountRates
from repro.errors import WorkloadError
from repro.workload.query import DSSQuery, Workload
from repro.workload.serialize import (
    load_workload,
    query_from_dict,
    query_to_dict,
    save_workload,
    workload_from_dict,
    workload_to_dict,
)
from repro.workload.tpch_queries import tpch_query


def build_workload() -> Workload:
    workload = Workload()
    workload.add(
        DSSQuery(
            query_id=1, name="plain", tables=("a", "b"),
            business_value=2.5, base_work=1234.0,
        ),
        arrival=3.0,
    )
    workload.add(
        DSSQuery(
            query_id=2, name="preferenced", tables=("c",),
            rates=DiscountRates(0.02, 0.07),
        ),
        arrival=9.0,
    )
    workload.add(tpch_query("Q3", query_id=3), arrival=12.0)
    return workload


class TestQueryRoundTrip:
    def test_plain_query(self):
        original = build_workload().query(1)
        rebuilt = query_from_dict(query_to_dict(original))
        assert rebuilt.name == original.name
        assert rebuilt.tables == original.tables
        assert rebuilt.business_value == original.business_value
        assert rebuilt.base_work == original.base_work
        assert rebuilt.rates is None

    def test_rates_survive(self):
        original = build_workload().query(2)
        rebuilt = query_from_dict(query_to_dict(original))
        assert rebuilt.rates == DiscountRates(0.02, 0.07)

    def test_tpch_logical_is_rebuilt(self):
        original = build_workload().query(3)
        rebuilt = query_from_dict(query_to_dict(original))
        assert rebuilt.logical is not None
        assert rebuilt.logical.table_names == original.logical.table_names

    def test_bad_logical_ref_rejected(self):
        payload = query_to_dict(build_workload().query(1))
        payload["logical_ref"] = "tpch:Q99"
        with pytest.raises(WorkloadError):
            query_from_dict(payload)

    def test_missing_field_rejected(self):
        with pytest.raises(WorkloadError):
            query_from_dict({"name": "incomplete"})

    def test_every_field_round_trips_at_once(self):
        """A query with *every* serializable field populated survives a
        full JSON text round-trip with nothing dropped or approximated.

        This is the exact path journal arrival records take, so any field
        this loses would silently corrupt crash recovery.
        """
        import dataclasses

        original = dataclasses.replace(
            tpch_query("Q3", query_id=42),
            business_value=1.0 / 3.0,
            rates=DiscountRates(0.1 + 0.2, 0.07),
            base_work=9_876.5,
        )
        payload = json.loads(json.dumps(query_to_dict(original)))
        rebuilt = query_from_dict(payload)
        assert rebuilt.query_id == 42
        assert rebuilt.name == "Q3"
        assert rebuilt.tables == original.tables
        assert rebuilt.business_value == 1.0 / 3.0  # bit-equal float
        assert rebuilt.rates == DiscountRates(0.1 + 0.2, 0.07)
        assert rebuilt.base_work == 9_876.5
        assert rebuilt.logical is not None
        assert rebuilt.logical.table_names == original.logical.table_names

    def test_non_tpch_logical_cannot_serialize(self):
        # An engine-built logical has no structural serialization; saving
        # must refuse loudly rather than produce a query that costs
        # differently on load.
        import dataclasses

        disguised = dataclasses.replace(
            tpch_query("Q3", query_id=9), name="not-a-tpch-name"
        )
        with pytest.raises(WorkloadError):
            query_to_dict(disguised)


class TestWorkloadRoundTrip:
    def test_dict_round_trip_preserves_arrivals(self):
        workload = build_workload()
        rebuilt = workload_from_dict(workload_to_dict(workload))
        assert len(rebuilt) == len(workload)
        for query in workload.queries:
            assert rebuilt.arrival_of(query.query_id) == workload.arrival_of(
                query.query_id
            )

    def test_file_round_trip(self, tmp_path):
        workload = build_workload()
        path = tmp_path / "workload.json"
        save_workload(workload, path)
        rebuilt = load_workload(path)
        assert [q.name for q in rebuilt.queries] == [
            q.name for q in workload.queries
        ]

    def test_document_is_valid_json_with_version(self, tmp_path):
        path = tmp_path / "workload.json"
        save_workload(build_workload(), path)
        payload = json.loads(path.read_text())
        assert payload["format_version"] == 1
        assert len(payload["queries"]) == 3

    def test_wrong_version_rejected(self):
        with pytest.raises(WorkloadError):
            workload_from_dict({"format_version": 99, "queries": []})

    def test_unreadable_file_rejected(self, tmp_path):
        path = tmp_path / "nope.json"
        with pytest.raises(WorkloadError):
            load_workload(path)
        path.write_text("{not json")
        with pytest.raises(WorkloadError):
            load_workload(path)

    def test_loaded_workload_is_schedulable(self, tmp_path):
        """End-to-end: a saved workload drives the MQO scheduler."""
        from repro.federation.catalog import (
            Catalog,
            FixedSyncSchedule,
            TableDef,
        )
        from repro.federation.costmodel import CostModel
        from repro.mqo.scheduler import WorkloadScheduler

        catalog = Catalog()
        for name in ("a", "b", "c"):
            catalog.add_table(TableDef(name, site=0, row_count=1_000))
            catalog.add_replica(name, FixedSyncSchedule([1.0], tail_period=4.0))

        workload = Workload()
        for index, name in enumerate(("a", "b", "c")):
            workload.add(
                DSSQuery(query_id=index + 1, name=f"q{index}", tables=(name,)),
                arrival=1.0,
            )
        path = tmp_path / "w.json"
        save_workload(workload, path)
        loaded = load_workload(path)

        scheduler = WorkloadScheduler(
            catalog, CostModel(catalog), DiscountRates(0.05, 0.05)
        )
        decision = scheduler.schedule(loaded)
        assert len(decision.result.assignments) == 3
