"""Unit tests: SLO rules, hysteresis, the monitor and alert replay."""

from __future__ import annotations

import json

import pytest

from repro.errors import SimulationError
from repro.obs import events
from repro.obs.live import LiveRegistry
from repro.obs.slo import (
    SLOMonitor,
    SLORule,
    default_slo_rules,
    load_slo_rules,
)
from repro.sim.trace import Tracer


def snap(section: str, metric: str, value: float) -> dict:
    return {section: {metric: value}}


class TestSLORule:
    def test_breach_and_clear_above(self):
        rule = SLORule("r", "gauges.x", "above", threshold=10.0, clear=5.0)
        assert rule.breached(11.0) and not rule.breached(10.0)
        assert rule.cleared(5.0) and not rule.cleared(6.0)
        assert rule.clear_threshold == 5.0

    def test_breach_and_clear_below(self):
        rule = SLORule("r", "gauges.x", "below", threshold=0.7, clear=0.85)
        assert rule.breached(0.6) and not rule.breached(0.7)
        assert rule.cleared(0.85) and not rule.cleared(0.8)

    def test_clear_defaults_to_threshold(self):
        rule = SLORule("r", "gauges.x", "above", threshold=3.0)
        assert rule.clear_threshold == 3.0
        assert rule.cleared(3.0) and not rule.cleared(3.5)

    def test_read_resolves_dotted_snapshot_path(self):
        rule = SLORule("r", "quantiles.query.sl.p95", "above", threshold=1.0)
        snapshot = {"quantiles": {"query.sl.p95": 4.5}}
        assert rule.read(snapshot) == 4.5
        assert rule.read({"quantiles": {}}) is None
        assert rule.read({}) is None

    def test_validation_errors(self):
        with pytest.raises(SimulationError):
            SLORule("r", "gauges.x", "between", threshold=1.0)
        with pytest.raises(SimulationError):
            SLORule("r", "flat-path", "above", threshold=1.0)
        with pytest.raises(SimulationError):
            SLORule("r", "gauges.x", "above", threshold=1.0, min_dwell=-1.0)
        # clear on the wrong side of threshold for the comparison.
        with pytest.raises(SimulationError):
            SLORule("r", "gauges.x", "above", threshold=1.0, clear=2.0)
        with pytest.raises(SimulationError):
            SLORule("r", "gauges.x", "below", threshold=1.0, clear=0.5)

    def test_dict_round_trip(self):
        rule = SLORule(
            "r", "gauges.x", "above", threshold=2.0, clear=1.0, min_dwell=3.0
        )
        assert SLORule.from_dict(rule.to_dict()) == rule
        bare = SLORule("s", "rates.y", "below", threshold=0.5)
        assert SLORule.from_dict(bare.to_dict()) == bare

    def test_from_dict_rejects_malformed(self):
        with pytest.raises(SimulationError):
            SLORule.from_dict({"name": "r"})


class TestLoadRules:
    def test_load_from_json_file(self, tmp_path):
        path = tmp_path / "slo.json"
        rules = [rule.to_dict() for rule in default_slo_rules()]
        path.write_text(json.dumps(rules))
        loaded = load_slo_rules(str(path))
        assert loaded == default_slo_rules()

    def test_load_rejects_non_list(self, tmp_path):
        path = tmp_path / "slo.json"
        path.write_text(json.dumps({"name": "r"}))
        with pytest.raises(SimulationError):
            load_slo_rules(str(path))

    def test_default_rules_have_unique_names_and_hysteresis(self):
        rules = default_slo_rules()
        names = [rule.name for rule in rules]
        assert len(set(names)) == len(names)
        assert all(rule.clear is not None for rule in rules)


class TestSLOMonitorEvaluate:
    def make(self, **rule_kwargs):
        rule = SLORule("r", "gauges.x", "above", threshold=10.0, **rule_kwargs)
        registry = LiveRegistry()
        return rule, SLOMonitor([rule], registry)

    def test_open_then_close_with_hysteresis(self):
        _rule, monitor = self.make(clear=5.0)
        monitor.evaluate(snap("gauges", "x", 12.0), 1.0)
        assert len(monitor.open_alerts) == 1
        # Back under threshold but above the clear line: still open.
        monitor.evaluate(snap("gauges", "x", 7.0), 2.0)
        assert len(monitor.open_alerts) == 1
        monitor.evaluate(snap("gauges", "x", 4.0), 3.0)
        assert monitor.open_alerts == []
        alert = monitor.alerts[0]
        assert alert.opened_at == 1.0 and alert.closed_at == 3.0
        assert alert.value == 12.0 and alert.close_value == 4.0

    def test_min_dwell_suppresses_single_sample_flaps(self):
        _rule, monitor = self.make(min_dwell=2.0)
        monitor.evaluate(snap("gauges", "x", 12.0), 1.0)
        assert monitor.alerts == []          # breached, dwelling
        monitor.evaluate(snap("gauges", "x", 12.0), 2.0)
        assert monitor.alerts == []          # only 1.0 minute in breach
        monitor.evaluate(snap("gauges", "x", 12.0), 3.5)
        assert len(monitor.alerts) == 1      # sustained past the dwell
        assert monitor.alerts[0].opened_at == 3.5

    def test_dwell_resets_when_breach_clears_early(self):
        _rule, monitor = self.make(min_dwell=2.0)
        monitor.evaluate(snap("gauges", "x", 12.0), 1.0)
        monitor.evaluate(snap("gauges", "x", 1.0), 2.0)   # flap resets dwell
        monitor.evaluate(snap("gauges", "x", 12.0), 3.0)
        assert monitor.alerts == []
        monitor.evaluate(snap("gauges", "x", 12.0), 5.0)
        assert len(monitor.alerts) == 1

    def test_missing_metric_is_skipped(self):
        _rule, monitor = self.make()
        monitor.evaluate({"gauges": {}}, 1.0)
        monitor.evaluate({}, 2.0)
        assert monitor.alerts == []

    def test_duplicate_rule_names_rejected(self):
        rule = SLORule("r", "gauges.x", "above", threshold=1.0)
        with pytest.raises(SimulationError):
            SLOMonitor([rule, rule], LiveRegistry())


class TestSLOMonitorAttached:
    def make_attached(self, rules):
        clock = [0.0]
        tracer = Tracer(lambda: clock[0])
        registry = LiveRegistry().attach(tracer)
        monitor = SLOMonitor(rules, registry).attach(tracer)
        return clock, tracer, monitor

    def test_emits_audited_alert_events_on_the_tracer(self):
        rule = SLORule(
            "dwell", "gauges.faults.outage_dwell", "above",
            threshold=5.0, clear=0.0,
        )
        clock, tracer, monitor = self.make_attached([rule])
        tracer.emit(events.FAULT_DOWN, "site:1")
        clock[0] = 7.0
        tracer.emit(events.SYNC_APPLY, "a", gap=0.5)   # dwell now 7 > 5
        clock[0] = 8.0
        tracer.emit(events.FAULT_UP, "site:1")         # dwell back to 0
        kinds = [record.kind for record in tracer.records]
        assert events.ALERT_OPEN in kinds and events.ALERT_CLOSE in kinds
        open_record = next(
            record for record in tracer.records
            if record.kind == events.ALERT_OPEN
        )
        assert open_record.subject == "slo:dwell"
        assert open_record.detail["rule"] == "dwell"
        assert open_record.detail["threshold"] == 5.0
        # The alert event lands *after* the record that triggered it.
        trigger = kinds.index(events.SYNC_APPLY)
        assert kinds.index(events.ALERT_OPEN) == trigger + 1
        assert len(monitor.alerts) == 1 and not monitor.alerts[0].open

    def test_monitor_ignores_its_own_alert_events(self):
        # Alert events must not recurse into evaluation: opening an alert
        # emits a record, which the subscription sees, which must not
        # re-evaluate (and re-open).
        rule = SLORule(
            "dwell", "gauges.faults.outage_dwell", "above", threshold=5.0
        )
        clock, tracer, monitor = self.make_attached([rule])
        tracer.emit(events.FAULT_DOWN, "site:1")
        clock[0] = 9.0
        tracer.emit(events.SYNC_APPLY, "a", gap=0.5)
        opens = [
            record for record in tracer.records
            if record.kind == events.ALERT_OPEN
        ]
        assert len(opens) == 1


class TestFinalize:
    """Regression: a run ending mid-breach left its alert dangling open.

    The trace then failed the checker's alert-alternation audit (an
    ``alert.open`` with no close) and the dashboard showed a breach that
    outlived the data.  ``finalize`` closes every open alert with an
    audited, ``final=True`` close.
    """

    def make_breaching_monitor(self):
        rule = SLORule("r", "gauges.x", "above", threshold=10.0)
        monitor = SLOMonitor([rule], LiveRegistry())
        monitor.evaluate(snap("gauges", "x", 12.0), 1.0)
        assert len(monitor.open_alerts) == 1
        return monitor

    def test_finalize_closes_open_alerts_with_last_value(self):
        monitor = self.make_breaching_monitor()
        monitor.evaluate(snap("gauges", "x", 15.0), 2.0)  # still breaching
        closed = monitor.finalize(3.0)
        assert len(closed) == 1 and monitor.open_alerts == []
        alert = closed[0]
        assert alert.closed_at == 3.0
        assert alert.close_value == 15.0  # last observed, not the opener

    def test_finalize_is_idempotent(self):
        monitor = self.make_breaching_monitor()
        assert len(monitor.finalize(2.0)) == 1
        assert monitor.finalize(3.0) == []
        assert len(monitor.alerts) == 1

    def test_finalize_without_open_alerts_is_a_no_op(self):
        rule = SLORule("r", "gauges.x", "above", threshold=10.0)
        monitor = SLOMonitor([rule], LiveRegistry())
        assert monitor.finalize(1.0) == []

    def test_dangling_alert_fails_the_checker_until_finalized(self):
        # The pre-fix failure mode, end to end on a traced monitor: the
        # trace with a dangling open fails alert-alternation; finalize
        # emits the audited close and the same trace passes.
        from repro.obs.checker import TraceChecker

        rule = SLORule(
            "dwell", "gauges.faults.outage_dwell", "above",
            threshold=5.0, clear=0.0,
        )
        clock = [0.0]
        tracer = Tracer(lambda: clock[0])
        registry = LiveRegistry().attach(tracer)
        monitor = SLOMonitor([rule], registry).attach(tracer)
        tracer.emit(events.FAULT_DOWN, "site:1")
        clock[0] = 7.0
        tracer.emit(events.SYNC_APPLY, "a", gap=0.5)  # dwell 7 > 5: opens
        assert len(monitor.open_alerts) == 1

        violations = TraceChecker().check(tracer.records)
        assert any(
            v.rule == "alert-alternation" and "still open" in v.message
            for v in violations
        )

        clock[0] = 8.0
        monitor.finalize(8.0)
        assert TraceChecker().check(tracer.records) == []
        close = next(
            record for record in tracer.records
            if record.kind == events.ALERT_CLOSE
        )
        assert close.detail["final"] is True
        assert close.detail["opened_at"] == 7.0

    def test_run_live_leaves_no_dangling_alerts(self):
        # run_live finalizes at shutdown; every alert it reports is closed
        # and the emitted trace passes the alternation audit.
        from repro.experiments.live import run_live
        from repro.obs.checker import TraceChecker

        result = run_live()
        assert all(not alert.open for alert in result.alerts)
        records = result.system.tracer.records
        assert not any(
            violation.rule == "alert-alternation"
            for violation in TraceChecker().check(
                records, dropped=result.system.tracer.dropped
            )
        )


class TestReplay:
    def make_traced_alert_run(self):
        rule = SLORule(
            "dwell", "gauges.faults.outage_dwell", "above",
            threshold=5.0, clear=0.0,
        )
        clock = [0.0]
        tracer = Tracer(lambda: clock[0])
        registry = LiveRegistry().attach(tracer)
        SLOMonitor([rule], registry).attach(tracer)
        tracer.emit(events.FAULT_DOWN, "site:1")
        for time in (3.0, 7.0, 9.0):
            clock[0] = time
            tracer.emit(events.SYNC_APPLY, "a", gap=0.5)
        clock[0] = 10.0
        tracer.emit(events.FAULT_UP, "site:1")
        return rule, tracer

    def test_replay_re_derives_the_emitted_alerts(self):
        rule, tracer = self.make_traced_alert_run()
        emitted = [
            record for record in tracer.records
            if record.kind in events.ALERT_KINDS
        ]
        replayed = SLOMonitor.replay(tracer.records, [rule]).alerts
        assert len(replayed) == len(emitted) // 2 + len(emitted) % 2
        assert [alert.opened_at for alert in replayed] == [
            record.time for record in emitted
            if record.kind == events.ALERT_OPEN
        ]

    def test_replay_is_deterministic(self):
        rule, tracer = self.make_traced_alert_run()
        first = SLOMonitor.replay(tracer.records, [rule]).alerts
        second = SLOMonitor.replay(tracer.records, [rule]).alerts
        assert [(a.rule, a.opened_at, a.closed_at) for a in first] == [
            (a.rule, a.opened_at, a.closed_at) for a in second
        ]

    def test_replay_ignores_alert_events_in_the_input(self):
        # Feeding the trace *with* its alert events must not change the
        # derivation (they are the monitor's own output, not its input).
        rule, tracer = self.make_traced_alert_run()
        stripped = [
            record for record in tracer.records
            if record.kind not in events.ALERT_KINDS
        ]
        with_alerts = SLOMonitor.replay(tracer.records, [rule]).alerts
        without = SLOMonitor.replay(stripped, [rule]).alerts
        assert [(a.rule, a.opened_at) for a in with_alerts] == [
            (a.rule, a.opened_at) for a in without
        ]
