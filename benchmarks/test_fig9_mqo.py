"""Figure 9 — the effects of multi-query optimization (synthetic, λ=.15).

Asserts the paper's shapes: the MQO gain over executing queries in arrival
order (a) grows with the query overlap rate, exceeding ~50% at a 50%
overlap, and (b) grows with the number of fully-overlapping queries.
"""

from __future__ import annotations

from repro.experiments.fig9 import Fig9Config, run_fig9a, run_fig9b
from repro.mqo.ga import GAConfig


def bench_config() -> Fig9Config:
    return Fig9Config(ga=GAConfig(generations=50))


def test_fig9a_overlap_rate(benchmark, show):
    table = benchmark.pedantic(
        lambda: run_fig9a(bench_config()), rounds=1, iterations=1
    )
    show(table.render())

    gains = dict(zip(table.column("overlap_pct"), table.column("gain_pct")))
    # MQO never hurts.
    assert all(gain >= -1e-6 for gain in gains.values())
    # The improvement grows with the overlap rate ...
    assert gains[50] > gains[30] > gains[10] - 1e-9
    # ... "when the rate of overlapping is 50%, MQO is effective in
    # achieving more than 50% performance gain".
    assert gains[50] > 50.0


def test_fig9b_query_count(benchmark, show):
    table = benchmark.pedantic(
        lambda: run_fig9b(bench_config()), rounds=1, iterations=1
    )
    show(table.render())

    counts = table.column("num_queries")
    gains = dict(zip(counts, table.column("gain_pct")))
    assert all(gain >= -1e-6 for gain in gains.values())
    # Small workloads leave little room; large ones benefit substantially.
    assert max(gains[c] for c in counts if c >= 10) > gains[2]
    assert max(gains.values()) > 50.0
