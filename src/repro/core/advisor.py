"""Data placement advisor (the paper's stated future work, Section 6).

"The future work includes developing a data placement advisor to recommend
table placement and replication strategies to further improve an overall
information value."  This module implements that advisor: given a candidate
table universe, a replica budget, and an evaluation function scoring a
replica set by the expected workload information value it yields, it runs
greedy forward selection followed by a swap-based local search.

The evaluator is injected (see
:func:`repro.experiments.ablations.placement_evaluator` for the standard
one built on the IVQP optimizer) so the advisor itself stays decoupled from
system construction.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import OptimizationError

__all__ = ["PlacementRecommendation", "PlacementAdvisor"]

Evaluator = Callable[[frozenset[str]], float]


@dataclass
class PlacementRecommendation:
    """The advisor's output."""

    replicas: frozenset[str]
    expected_value: float
    history: list[tuple[str, float]] = field(default_factory=list)

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"recommended replicas ({len(self.replicas)}): "
            + ", ".join(sorted(self.replicas)),
            f"expected workload IV: {self.expected_value:.4f}",
        ]
        for table, value in self.history:
            lines.append(f"  + {table}: {value:.4f}")
        return "\n".join(lines)


class PlacementAdvisor:
    """Greedy + swap local-search replica selection."""

    def __init__(
        self,
        candidate_tables: Sequence[str],
        evaluate: Evaluator,
        budget: int,
        swap_passes: int = 1,
    ) -> None:
        if budget < 0:
            raise OptimizationError(f"budget must be >= 0, got {budget}")
        if budget > len(candidate_tables):
            raise OptimizationError(
                f"budget {budget} exceeds {len(candidate_tables)} candidates"
            )
        if swap_passes < 0:
            raise OptimizationError("swap_passes must be >= 0")
        self.candidates = list(dict.fromkeys(candidate_tables))
        if len(self.candidates) != len(candidate_tables):
            raise OptimizationError("candidate tables contain duplicates")
        self.evaluate = evaluate
        self.budget = budget
        self.swap_passes = swap_passes

    def recommend(self) -> PlacementRecommendation:
        """Pick up to ``budget`` tables to replicate."""
        chosen: set[str] = set()
        history: list[tuple[str, float]] = []
        current_value = self.evaluate(frozenset())

        # Greedy forward selection.
        for _slot in range(self.budget):
            best_table = None
            best_value = current_value
            for table in self.candidates:
                if table in chosen:
                    continue
                value = self.evaluate(frozenset(chosen | {table}))
                if value > best_value:
                    best_value = value
                    best_table = table
            if best_table is None:
                break  # no candidate improves the workload IV
            chosen.add(best_table)
            current_value = best_value
            history.append((best_table, best_value))

        # Swap local search: try replacing each chosen table with each
        # unchosen one; keep any strict improvement.
        for _pass in range(self.swap_passes):
            improved = False
            for inside in sorted(chosen):
                for outside in self.candidates:
                    if outside in chosen:
                        continue
                    trial = frozenset((chosen - {inside}) | {outside})
                    value = self.evaluate(trial)
                    if value > current_value:
                        chosen = set(trial)
                        current_value = value
                        history.append((f"{inside}->{outside}", value))
                        improved = True
                        break
            if not improved:
                break

        return PlacementRecommendation(
            replicas=frozenset(chosen),
            expected_value=current_value,
            history=history,
        )
