"""Unit and property tests: the scatter-and-gather IVQP optimizer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.enumeration import enumerate_plans
from repro.core.optimizer import IVQPOptimizer, SearchDiagnostics
from repro.core.value import DiscountRates, information_value
from repro.federation.catalog import Catalog, FixedSyncSchedule, TableDef
from repro.federation.costmodel import StaticCostProvider
from repro.workload.query import DSSQuery


class TestFig4Walkthrough:
    """The paper's worked example, end to end."""

    def test_scatter_incumbent_matches_paper(self, fig4_world):
        _catalog, _provider, _query, rates = fig4_world
        scatter = information_value(1.0, 10.0, 10.0, rates)
        assert scatter == pytest.approx(0.9**20)

    def test_chosen_plan_beats_scatter(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        plan = IVQPOptimizer(catalog, provider, rates).choose_plan(query, 11.0)
        assert plan.information_value > 0.9**20

    def test_matches_exhaustive_oracle(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        plan = IVQPOptimizer(catalog, provider, rates).choose_plan(query, 11.0)
        oracle_plans = enumerate_plans(
            query, catalog, provider, rates, 11.0, 31.0, exhaustive=True
        )
        best = max(p.information_value for p in oracle_plans)
        assert plan.information_value == pytest.approx(best)

    def test_bound_tightens_during_search(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        diagnostics = SearchDiagnostics()
        IVQPOptimizer(catalog, provider, rates).choose_plan(
            query, 11.0, diagnostics
        )
        assert diagnostics.bound_tightenings >= 1
        assert diagnostics.final_bound < 31.0

    def test_gather_evaluates_far_fewer_plans_than_oracle(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        diagnostics = SearchDiagnostics()
        IVQPOptimizer(catalog, provider, rates).choose_plan(
            query, 11.0, diagnostics
        )
        oracle_plans = enumerate_plans(
            query, catalog, provider, rates, 11.0, 31.0, exhaustive=True
        )
        assert diagnostics.plans_evaluated < len(oracle_plans) / 3


class TestEdgeCases:
    def test_no_replicas_returns_all_base_immediate(self):
        catalog = Catalog()
        catalog.add_table(TableDef("A", site=0, row_count=100))
        provider = StaticCostProvider(catalog, {0: 1.0, 1: 3.0})
        rates = DiscountRates.symmetric(0.1)
        query = DSSQuery(query_id=1, name="q", tables=("A",))
        plan = IVQPOptimizer(catalog, provider, rates).choose_plan(query, 5.0)
        assert plan.remote_tables == frozenset({"A"})
        assert not plan.delayed

    def test_unknown_table_raises(self, fig4_world):
        catalog, provider, _query, rates = fig4_world
        query = DSSQuery(query_id=9, name="bad", tables=("NOPE",))
        with pytest.raises(Exception):
            IVQPOptimizer(catalog, provider, rates).choose_plan(query, 0.0)

    def test_fresh_replicas_win_immediately(self):
        """Replicas synced an instant ago: the all-replica plan dominates."""
        catalog = Catalog()
        for index, name in enumerate(("A", "B")):
            catalog.add_table(TableDef(name, site=index, row_count=100))
            catalog.add_replica(name, FixedSyncSchedule([9.99], tail_period=50.0))
        provider = StaticCostProvider(catalog, {0: 2.0, 1: 6.0, 2: 10.0})
        rates = DiscountRates.symmetric(0.1)
        query = DSSQuery(query_id=1, name="q", tables=("A", "B"))
        plan = IVQPOptimizer(catalog, provider, rates).choose_plan(query, 10.0)
        assert plan.remote_tables == frozenset()
        assert not plan.delayed

    def test_stale_replicas_push_to_base_tables(self):
        """Replicas synced long ago and never again soon: go remote."""
        catalog = Catalog()
        for index, name in enumerate(("A", "B")):
            catalog.add_table(TableDef(name, site=index, row_count=100))
            catalog.add_replica(
                name, FixedSyncSchedule([1.0], tail_period=500.0)
            )
        provider = StaticCostProvider(catalog, {0: 2.0, 1: 4.0, 2: 6.0})
        rates = DiscountRates(computational=0.01, synchronization=0.2)
        query = DSSQuery(query_id=1, name="q", tables=("A", "B"))
        plan = IVQPOptimizer(catalog, provider, rates).choose_plan(query, 100.0)
        assert plan.remote_tables == frozenset({"A", "B"})

    def test_imminent_sync_triggers_delayed_plan(self):
        """A sync completing in one minute is worth waiting for."""
        catalog = Catalog()
        catalog.add_table(TableDef("A", site=0, row_count=100))
        catalog.add_replica(
            "A", FixedSyncSchedule([1.0, 11.0], tail_period=500.0)
        )
        provider = StaticCostProvider(catalog, {0: 2.0, 1: 20.0})
        rates = DiscountRates(computational=0.01, synchronization=0.2)
        query = DSSQuery(query_id=1, name="q", tables=("A",))
        plan = IVQPOptimizer(catalog, provider, rates).choose_plan(query, 10.0)
        assert plan.delayed
        assert plan.start_time == pytest.approx(11.0)
        assert plan.remote_tables == frozenset()

    def test_respects_per_query_rates(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        optimizer = IVQPOptimizer(catalog, provider, rates)
        patient = query.with_rates(DiscountRates(0.0, 0.3))
        assert optimizer.rates_for(patient).synchronization == 0.3

    def test_max_time_lines_caps_search(self, fig4_world):
        catalog, provider, query, _rates = fig4_world
        # Zero CL rate -> infinite bound; the cap must terminate the search.
        rates = DiscountRates(computational=0.0, synchronization=0.1)
        optimizer = IVQPOptimizer(catalog, provider, rates, max_time_lines=5)
        plan = optimizer.choose_plan(query, 11.0)
        assert plan is not None


def _random_world(periods, offsets, submit, costs_base, cost_step):
    catalog = Catalog()
    names = []
    for index, (period, offset) in enumerate(zip(periods, offsets)):
        name = f"T{index}"
        names.append(name)
        catalog.add_table(TableDef(name, site=index, row_count=100))
        times = [offset + k * period for k in range(40)]
        catalog.add_replica(name, FixedSyncSchedule(times, tail_period=period))
    costs = {k: costs_base + cost_step * k for k in range(len(names) + 1)}
    provider = StaticCostProvider(catalog, costs)
    query = DSSQuery(query_id=1, name="prop", tables=tuple(names))
    return catalog, provider, query


@settings(max_examples=40, deadline=None)
@given(
    periods=st.lists(
        st.floats(min_value=2.0, max_value=20.0), min_size=1, max_size=4
    ),
    offset_fractions=st.lists(
        st.floats(min_value=0.05, max_value=0.95), min_size=4, max_size=4
    ),
    submit=st.floats(min_value=0.0, max_value=40.0),
    rate=st.floats(min_value=0.02, max_value=0.3),
    costs_base=st.floats(min_value=0.5, max_value=4.0),
    cost_step=st.floats(min_value=0.5, max_value=4.0),
)
def test_scatter_gather_matches_oracle_on_uniform_costs(
    periods, offset_fractions, submit, rate, costs_base, cost_step
):
    """With per-table-count costs, gather pruning is lossless: the bounded
    search always finds the exhaustive optimum."""
    offsets = [
        fraction * period
        for fraction, period in zip(offset_fractions, periods)
    ]
    catalog, provider, query = _random_world(
        periods, offsets, submit, costs_base, cost_step
    )
    rates = DiscountRates.symmetric(rate)
    plan = IVQPOptimizer(catalog, provider, rates).choose_plan(query, submit)

    worst_cost = costs_base + cost_step * len(periods)
    horizon = submit + 2.0 * worst_cost + max(periods) + 1.0
    oracle = max(
        p.information_value
        for p in enumerate_plans(
            query, catalog, provider, rates, submit, horizon, exhaustive=True
        )
    )
    assert plan.information_value == pytest.approx(oracle, rel=1e-9)


class TestExhaustedFlag:
    def test_truncated_walk_sets_exhausted(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        diagnostics = SearchDiagnostics()
        IVQPOptimizer(
            catalog, provider, rates, max_time_lines=1
        ).choose_plan(query, 11.0, diagnostics)
        assert diagnostics.exhausted
        assert diagnostics.time_lines_visited == 1

    def test_completed_walk_leaves_exhausted_unset(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        diagnostics = SearchDiagnostics()
        IVQPOptimizer(catalog, provider, rates).choose_plan(
            query, 11.0, diagnostics
        )
        assert not diagnostics.exhausted
