"""End-to-end observability for the federated DSS runtime.

Three pillars, all built on the :mod:`repro.sim.trace` substrate:

* **query lifecycle spans** (:mod:`repro.obs.events`,
  :mod:`repro.obs.spans`) — every query's path through the system as a
  typed, causally-ordered event stream, assembled into span trees;
* the **IV audit ledger** (:mod:`repro.obs.ledger`) — the exact CL
  decomposition and SL provenance behind every reported information
  value, recomputable bit-identically;
* the **metrics registry** (:mod:`repro.obs.metrics`) — counters, gauges
  and histograms unifying the runtime's scattered statistics.

:mod:`repro.obs.export` serializes traces (JSONL, chrome://tracing) and
:mod:`repro.obs.checker` turns any trace into a self-audit:
``TraceChecker().check(records) == []`` is the system-wide invariant the
test harness locks down.
"""

from repro.obs import events
from repro.obs.checker import TraceChecker, Violation
from repro.obs.export import (
    from_jsonl,
    ledger_from_records,
    normalize,
    read_jsonl,
    to_chrome_trace,
    to_jsonl,
    write_jsonl,
)
from repro.obs.ledger import IVLedgerEntry, VersionProvenance
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry_from_system,
)
from repro.obs.spans import Span, build_query_spans, render_span

__all__ = [
    "events",
    "TraceChecker",
    "Violation",
    "IVLedgerEntry",
    "VersionProvenance",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry_from_system",
    "Span",
    "build_query_spans",
    "render_span",
    "to_jsonl",
    "from_jsonl",
    "write_jsonl",
    "read_jsonl",
    "normalize",
    "to_chrome_trace",
    "ledger_from_records",
]
