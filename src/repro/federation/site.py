"""Sites: the local federation (DSS) server and remote servers.

Each site owns a queueing :class:`~repro.sim.resource.Resource`; queries
contend for it, which is where the paper's "query queuing time" component
of computational latency comes from.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.sim.resource import Resource
from repro.sim.scheduler import Simulator

__all__ = ["LOCAL_SITE_ID", "Site"]

#: Site id reserved for the local federation server.
LOCAL_SITE_ID = -1


class Site:
    """One server pool (local DSS server or a remote server)."""

    def __init__(
        self,
        sim: Simulator,
        site_id: int,
        name: str = "",
        capacity: int = 1,
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"site capacity must be >= 1, got {capacity}")
        self.site_id = site_id
        self.name = name or (
            "local-dss" if site_id == LOCAL_SITE_ID else f"site-{site_id}"
        )
        self.server = Resource(sim, capacity=capacity, name=self.name)
        #: Availability flag maintained by a fault injector; outage
        #: *decisions* derive from the pre-scheduled fault timelines, this
        #: flag mirrors them for observability (dashboards, repr, traces).
        self.available = True

    def set_available(self, up: bool) -> None:
        """Flip the availability flag (fault injector callback)."""
        self.available = bool(up)

    @property
    def is_local(self) -> bool:
        """Whether this is the local federation server."""
        return self.site_id == LOCAL_SITE_ID

    @property
    def utilization_hint(self) -> float:
        """Mean queueing wait observed so far (minutes)."""
        if self.server.total_requests == 0:
            return 0.0
        return self.server.total_wait / self.server.total_requests

    def telemetry(self) -> dict[str, float]:
        """The site's gauge block for metrics registries and dashboards."""
        return {
            "site.available": 1.0 if self.available else 0.0,
            "site.in_use": float(self.server.in_use),
            "site.queue_depth": float(self.server.queue_length),
            "site.requests": float(self.server.total_requests),
            "site.mean_wait": self.utilization_hint,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "" if self.available else ", DOWN"
        return f"Site({self.name!r}, in_use={self.server.in_use}{state})"
