"""Online MQO: rolling-window scheduling of a live query stream.

The paper's MQO (Section 3.2) optimizes a workload it holds in hand; its
own premise — near real-time BI over continuously refreshed replicas —
means queries actually *arrive over time*.  This module closes that gap
with an event-driven scheduler that keeps the batch machinery (conflict
groups, GA ordering, the analytic evaluator) but applies it repeatedly to
a moving frontier:

* **Admission** — an arriving query is admitted to a bounded pending
  queue; if its IV *upper bound* (best case over every candidate plan,
  any availability) is already below ``iv_floor`` it is **shed** — it can
  never pay for its seat.  When the queue is full the query is
  **deferred** and re-queued at the next window close.
* **Rolling re-optimization** — each time the window closes or a running
  query completes (and the pending set changed since the last pass), the
  not-yet-started queries are re-grouped into conflict groups and each
  group's order is re-optimized by the GA, **warm-started** from the
  previous pass's best permutation (an extra seed chromosome) so
  convergence cost amortizes across windows.
* **Dispatch** — the head of the optimized plan is realized against
  committed server state and started, but only once no earlier event
  (arrival, window, completion) could still change the plan; completions
  feed back into the event timeline.

Equivalence anchor: with admission disabled (``iv_floor=0``, a queue that
fits the whole stream, ``eager_start=False``) and one window spanning all
arrivals, exactly one optimization pass runs over the full workload with
the same GA seeds and seed chromosome as the batch path — the decision is
bit-identical to :meth:`WorkloadScheduler.schedule`
(``tests/test_mqo_online_properties.py`` proves it property-style).
"""

from __future__ import annotations

import time as _time
import typing
from dataclasses import dataclass, field

from repro.core.enumeration import CostProvider
from repro.core.value import DiscountRates
from repro.errors import OptimizationError
from repro.federation.catalog import Catalog
from repro.mqo.conflict import conflict_groups, execution_ranges
from repro.mqo.evaluator import (
    Assignment,
    EvaluationResult,
    EvaluatorStats,
    WorkloadEvaluator,
)
from repro.mqo.ga import GAConfig, GeneticAlgorithm
from repro.obs import events
from repro.obs.profile import profiled
from repro.sim.timeline import Timeline

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.trace import Tracer
    from repro.workload.query import Workload

__all__ = [
    "OnlineConfig",
    "OnlineStats",
    "WindowRecord",
    "OnlineDecision",
    "OnlineMQOScheduler",
]

#: Spacing of GA seeds between optimization passes.  A prime stride keeps
#: pass ``k``'s group seeds (``seed + k*stride + group``) disjoint from
#: pass ``k+1``'s for any realistic group count, and stride 0 on the first
#: pass makes it coincide with the batch scheduler's ``seed + group``.
_PASS_SEED_STRIDE = 7919


@dataclass(frozen=True)
class OnlineConfig:
    """Knobs of the online scheduling loop."""

    #: Rolling re-optimization period (minutes of stream time).
    window: float = 5.0
    #: Bound on the pending queue (admitted + planned, not yet started).
    max_pending: int = 64
    #: Admission floor: shed a query whose IV upper bound is below this.
    iv_floor: float = 0.0
    #: Optimize immediately when a query arrives to an idle system rather
    #: than waiting for the window to close (cuts idle latency; turn off
    #: for bit-exact batch equivalence).
    eager_start: bool = True

    def __post_init__(self) -> None:
        if self.window <= 0:
            raise OptimizationError(f"window must be > 0, got {self.window}")
        if self.max_pending < 1:
            raise OptimizationError(
                f"max_pending must be >= 1, got {self.max_pending}"
            )
        if self.iv_floor < 0:
            raise OptimizationError(
                f"iv_floor must be >= 0, got {self.iv_floor}"
            )


@dataclass
class OnlineStats:
    """Counters of one online run (numeric fields feed ``repro.obs`` metrics)."""

    submitted: int = 0    #: queries seen on the arrival stream
    admitted: int = 0     #: queries accepted into the pending queue
    shed: int = 0         #: queries rejected by the IV floor
    deferred: int = 0     #: arrivals parked because the queue was full
    requeued: int = 0     #: deferred queries later admitted at a window
    dispatched: int = 0   #: queries started (each exactly once)
    windows: int = 0      #: re-optimization passes run
    ga_runs: int = 0      #: GA invocations across all passes
    warm_seeds: int = 0   #: GA runs seeded with the previous incumbent
    reopt_seconds: float = 0.0  #: wall-clock spent re-optimizing


@dataclass(frozen=True)
class WindowRecord:
    """One re-optimization pass (the audit trail behind ``MQO_WINDOW``)."""

    index: int
    time: float            #: stream time the pass ran at
    trigger: str           #: "window" | "completion" | "idle"
    pending: int           #: not-yet-started queries optimized over
    groups: int            #: conflict groups formed this pass
    order: tuple[int, ...]  #: the pass's decided dispatch order
    ga_runs: int
    warm_seeded: int
    reopt_seconds: float


@dataclass
class OnlineDecision:
    """The online scheduler's output (mirrors ``ScheduleDecision``)."""

    result: EvaluationResult
    shed: list[int] = field(default_factory=list)
    windows: list[WindowRecord] = field(default_factory=list)
    stats: OnlineStats = field(default_factory=OnlineStats)
    evaluator_stats: EvaluatorStats | None = None

    @property
    def total_information_value(self) -> float:
        """Total realized IV of the executed (non-shed) queries."""
        return self.result.total_information_value

    @property
    def mean_information_value(self) -> float:
        """Mean realized IV over executed queries."""
        return self.result.mean_information_value

    @property
    def permutation(self) -> list[int]:
        """The realized dispatch order."""
        return [a.query.query_id for a in self.result.assignments]


class OnlineMQOScheduler:
    """Rolling-window MQO over a query arrival stream."""

    def __init__(
        self,
        catalog: Catalog,
        cost_provider: CostProvider,
        default_rates: DiscountRates,
        ga_config: GAConfig | None = None,
        seed: int = 0,
        max_candidates: int = 64,
        tracer: "Tracer | None" = None,
        config: OnlineConfig | None = None,
    ) -> None:
        self.catalog = catalog
        self.cost_provider = cost_provider
        self.default_rates = default_rates
        self.ga_config = ga_config or GAConfig()
        self.seed = seed
        self.max_candidates = max_candidates
        self.tracer = tracer
        self.config = config or OnlineConfig()

    # -- the event loop ----------------------------------------------------

    def run(self, workload: "Workload") -> OnlineDecision:
        """Replay the workload's arrival stream through the online loop."""
        if len(workload) == 0:
            raise OptimizationError("cannot schedule an empty workload")
        config = self.config
        evaluator = WorkloadEvaluator(
            self.catalog,
            self.cost_provider,
            self.default_rates,
            workload,
            max_candidates=self.max_candidates,
        )
        stats = OnlineStats()
        decision = OnlineDecision(
            result=EvaluationResult(), stats=stats,
            evaluator_stats=evaluator.stats,
        )

        timeline = Timeline()
        ordered = workload.sorted_by_arrival()
        arrivals_left = len(ordered)
        for query in ordered:
            timeline.push(
                workload.arrival_of(query.query_id), "arrival", query.query_id
            )
        first_arrival = workload.arrival_of(ordered[0].query_id)
        timeline.push(first_arrival + config.window, "window", None)

        queue: list[int] = []      # admitted, awaiting optimization
        plan: list[int] = []       # optimized dispatch order
        deferred: list[int] = []   # queue-overflow parking lot
        running: set[int] = set()
        free_at: dict[int, float] = {}
        incumbent: list[int] = []  # previous pass's order (warm start)
        dirty = False              # pending set changed since last pass
        pass_serial = 0

        def emit(kind: str, subject: str, **details) -> None:
            if self.tracer is not None:
                self.tracer.emit(kind, subject, **details)

        def pending_ids() -> list[int]:
            return plan + queue

        def admit_room() -> bool:
            return len(plan) + len(queue) < config.max_pending

        def release_deferred() -> None:
            nonlocal dirty
            while deferred and admit_room():
                qid = deferred.pop(0)
                queue.append(qid)
                stats.requeued += 1
                stats.admitted += 1
                dirty = True
                emit(
                    events.MQO_ADMIT, workload.query(qid).name,
                    qid=qid, requeued=True,
                )

        @profiled("online.window")
        def optimize(now: float, trigger: str) -> None:
            nonlocal dirty, pass_serial, incumbent, plan
            pending = pending_ids()
            began = _time.perf_counter()
            evaluator.rebase(free_at)
            ranges = execution_ranges(evaluator, query_ids=pending)
            groups = conflict_groups(ranges)
            # Stable sort: ties keep pending order, which on the first pass
            # is admission order — exactly the batch scheduler's
            # ``sorted_by_arrival`` tie-breaking.
            arrival_order = sorted(pending, key=workload.arrival_of)
            group_orders: dict[int, list[int]] = {}
            ga_runs = 0
            warm_seeded = 0
            for index, group in enumerate(groups):
                if len(group) < 2:
                    group_orders[index] = list(group)
                    continue
                group_set = set(group)
                seeds = [
                    [qid for qid in arrival_order if qid in group_set]
                ]
                carried = [qid for qid in incumbent if qid in group_set]
                if len(carried) >= 2:
                    # Warm start: members carried over from the previous
                    # pass keep their decided relative order; members new
                    # to this pass append in arrival order.
                    carried_set = set(carried)
                    warm = carried + [
                        qid for qid in seeds[0] if qid not in carried_set
                    ]
                    if warm != seeds[0]:
                        seeds.append(warm)
                        warm_seeded += 1
                        stats.warm_seeds += 1
                ga = GeneticAlgorithm(
                    genes=group,
                    fitness=evaluator.sequence_fitness,
                    config=self.ga_config,
                    seed=self.seed + pass_serial * _PASS_SEED_STRIDE + index,
                    evaluator_stats=evaluator.stats,
                )
                outcome = ga.run(seed_chromosomes=seeds)
                group_orders[index] = outcome.best
                ga_runs += 1
                stats.ga_runs += 1
            ordered_groups = sorted(
                range(len(groups)),
                key=lambda index: min(
                    workload.arrival_of(qid) for qid in groups[index]
                ),
            )
            new_plan: list[int] = []
            for index in ordered_groups:
                new_plan.extend(group_orders[index])
            elapsed = _time.perf_counter() - began
            plan[:] = new_plan
            queue.clear()
            incumbent = list(new_plan)
            dirty = False
            record = WindowRecord(
                index=len(decision.windows),
                time=now,
                trigger=trigger,
                pending=len(pending),
                groups=len(groups),
                order=tuple(new_plan),
                ga_runs=ga_runs,
                warm_seeded=warm_seeded,
                reopt_seconds=elapsed,
            )
            decision.windows.append(record)
            stats.windows += 1
            stats.reopt_seconds += elapsed
            pass_serial += 1
            emit(
                events.MQO_WINDOW, f"window:{record.index}",
                index=record.index, trigger=trigger,
                pending=record.pending, groups=record.groups,
                order=list(record.order),
            )

        def best_assignment(qid: int) -> Assignment:
            query = workload.query(qid)
            arrival = workload.arrival_of(qid)
            best: Assignment | None = None
            for candidate in evaluator.candidates(query):
                assignment = evaluator._realize(candidate, arrival, free_at)
                if best is None or (
                    assignment.information_value > best.information_value
                ):
                    best = assignment
            assert best is not None  # candidates never empty
            return best

        @profiled("online.dispatch")
        def dispatch(now: float) -> None:
            # Start plan heads whose begin precedes every event that could
            # still change the plan; realization is a pure function of the
            # order and committed state, so *when* we commit is irrelevant
            # to the schedule — only re-optimization opportunities matter.
            while plan:
                assignment = best_assignment(plan[0])
                if timeline and assignment.begin > timeline.peek_time():
                    break
                qid = plan.pop(0)
                evaluator._commit(assignment, free_at)
                decision.result.assignments.append(assignment)
                running.add(qid)
                stats.dispatched += 1
                timeline.push(
                    max(assignment.completed, now), "completion", qid
                )

        while timeline:
            now, tag, payload = timeline.pop()
            if tag == "arrival":
                arrivals_left -= 1
                qid = payload
                query = workload.query(qid)
                stats.submitted += 1
                bound = evaluator.upper_bound(qid)
                if bound < config.iv_floor:
                    decision.shed.append(qid)
                    stats.shed += 1
                    emit(
                        events.MQO_SHED, query.name,
                        qid=qid, bound=bound, floor=config.iv_floor,
                    )
                elif not admit_room():
                    deferred.append(qid)
                    stats.deferred += 1
                else:
                    queue.append(qid)
                    stats.admitted += 1
                    dirty = True
                    emit(events.MQO_ADMIT, query.name, qid=qid, requeued=False)
                    if (
                        config.eager_start
                        and dirty
                        and not running
                        and not plan
                    ):
                        optimize(now, "idle")
            elif tag == "window":
                release_deferred()
                if dirty and pending_ids():
                    optimize(now, "window")
                if arrivals_left or queue or deferred or plan:
                    timeline.push(now + config.window, "window", None)
            else:  # completion
                running.discard(payload)
                release_deferred()
                if dirty and pending_ids():
                    optimize(now, "completion")
            dispatch(now)

        # No events left: everything admitted must drain unconditionally.
        if queue or deferred:  # pragma: no cover - windows drain these
            queue.extend(deferred)
            deferred.clear()
            optimize(
                max(free_at.values(), default=0.0), "window"
            )
            dispatch(0.0)
        return decision
