"""Reproduction validator: re-check every claimed shape in EXPERIMENTS.md.

``python -m repro check`` runs reduced-size versions of all experiments and
verifies each qualitative claim the paper makes (and that this reproduction
documents), printing one PASS/FAIL line per claim.  The benchmark suite
asserts the same shapes; this module gives users a one-command audit that
does not require pytest.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.experiments.ablations import (
    AblationConfig,
    run_aging_ablation,
    run_ga_ablation,
    run_routing_ablation,
    run_search_ablation,
)
from repro.experiments.config import TpchSetup
from repro.experiments.fig4_walkthrough import run_fig4
from repro.experiments.fig5 import Fig5Config, run_fig5
from repro.experiments.fig8 import Fig8Config, run_fig8
from repro.experiments.fig9 import Fig9Config, run_fig9a
from repro.experiments.load import LoadConfig, run_load_sweep
from repro.experiments.sensitivity import SensitivityConfig, run_sensitivity
from repro.reporting.tables import ResultTable

__all__ = ["Claim", "validate_all", "render_report"]


@dataclass
class Claim:
    """One checked statement about the reproduction."""

    figure: str
    statement: str
    passed: bool
    detail: str = ""


def _fig4_claims() -> list[Claim]:
    outcome = run_fig4()
    return [
        Claim(
            "fig4", "scatter incumbent equals BV x 0.9^10 x 0.9^10",
            abs(outcome.scatter_iv - 0.9**20) < 1e-12,
            f"measured {outcome.scatter_iv:.6f}",
        ),
        Claim(
            "fig4", "initial search bound is t = 31",
            abs(outcome.initial_bound - 31.0) < 1e-12,
            f"measured {outcome.initial_bound}",
        ),
        Claim(
            "fig4", "scatter-and-gather matches the exhaustive oracle",
            abs(
                outcome.chosen.information_value
                - outcome.oracle.information_value
            ) < 1e-9,
            f"chosen {outcome.chosen.information_value:.4f}",
        ),
    ]


def _fig5_claims() -> list[Claim]:
    config = Fig5Config(setup=TpchSetup(scale=0.001, seed=7), rounds=1)
    table = run_fig5(config)

    def cell(ratio, lambdas, approach) -> float:
        for row in table.rows:
            if (row[0], (row[1], row[2]), row[3]) == (ratio, lambdas, approach):
                return row[4]
        raise KeyError((ratio, lambdas, approach))

    dominance = all(
        cell(r, lam, "ivqp") >= cell(r, lam, baseline) - 5e-3
        for r in config.ratios
        for lam in config.lambdas
        for baseline in ("federation", "warehouse")
    )
    dw_trend = all(
        cell("1:20", lam, "warehouse") > cell("1:0.1", lam, "warehouse")
        for lam in config.lambdas
    )
    crossover = cell("1:20", (0.01, 0.01), "warehouse") > cell(
        "1:20", (0.01, 0.01), "federation"
    ) and cell("1:0.1", (0.01, 0.01), "warehouse") < cell(
        "1:0.1", (0.01, 0.01), "federation"
    )
    return [
        Claim("fig5", "IVQP highest IV in every (ratio, lambda) cell",
              dominance),
        Claim("fig5", "Data Warehouse improves with sync frequency", dw_trend),
        Claim("fig5", "DW overtakes Federation by 1:20 (not at 1:0.1)",
              crossover),
    ]


def _fig8_claims() -> list[Claim]:
    table = run_fig8(Fig8Config(site_counts=(2, 10, 22), query_count=60))

    def value(placement, sites, approach) -> float:
        for row in table.rows:
            if (row[0], row[1], row[2]) == (placement, sites, approach):
                return row[3]
        raise KeyError((placement, sites, approach))

    wins = all(
        value(p, s, "ivqp") >= value(p, s, baseline) - 1e-6
        for p in ("skewed", "uniform")
        for s in (2, 10, 22)
        for baseline in ("federation", "warehouse")
    )
    uniform_declines = value("uniform", 22, "ivqp") < value("uniform", 2, "ivqp")
    skewed_flat = abs(
        value("skewed", 22, "ivqp") - value("skewed", 10, "ivqp")
    ) < 0.02
    return [
        Claim("fig8", "IVQP wins at every (placement, sites) point", wins),
        Claim("fig8", "uniform placement degrades with more sites",
              uniform_declines),
        Claim("fig8", "skewed placement stays flat past 10 sites", skewed_flat),
    ]


def _fig9_claims() -> list[Claim]:
    table = run_fig9a(Fig9Config())
    gains = dict(zip(table.column("overlap_pct"), table.column("gain_pct")))
    return [
        Claim("fig9", "MQO gain grows with overlap rate",
              gains[50] > gains[30] > gains[10] - 1e-9,
              f"10%:{gains[10]:.1f} 30%:{gains[30]:.1f} 50%:{gains[50]:.1f}"),
        Claim("fig9", "MQO gain exceeds 50% at 50% overlap",
              gains[50] > 50.0, f"measured {gains[50]:.1f}%"),
    ]


def _ablation_claims() -> list[Claim]:
    claims = []
    aging = run_aging_ablation(AblationConfig())
    rows = {row[0]: row for row in aging.rows}
    claims.append(
        Claim("abl1", "aging bounds the starving report's wait",
              rows["aging"][3] < rows["no-aging"][3] / 2,
              f"{rows['no-aging'][3]:.1f} -> {rows['aging'][3]:.1f} min")
    )
    search = run_search_ablation(AblationConfig())
    claims.append(
        Claim("abl2", "scatter-gather equals the oracle on all trials",
              all(abs(row[2] - row[3]) < 1e-9 for row in search.rows))
    )
    routing = run_routing_ablation(AblationConfig())
    routing_rows = {row[0]: row for row in routing.rows}
    claims.append(
        Claim("abl4", "routing table is near-optimal and faster than search",
              routing_rows["routing-table"][1]
              >= 0.98 * routing_rows["live-search"][1]
              and routing_rows["routing-table"][3]
              < routing_rows["live-search"][3])
    )
    ga = run_ga_ablation(AblationConfig())
    ga_values = dict(zip(ga.column("strategy"), ga.column("total_iv")))
    claims.append(
        Claim("abl5", "GA matches or beats random search and hill climbing",
              ga_values["genetic-algorithm"] >= max(
                  ga_values["random-search"], ga_values["hill-climb"]
              ) - 1e-9,
              f"GA {ga_values['genetic-algorithm']:.2f} vs best simple "
              f"{max(ga_values['random-search'], ga_values['hill-climb']):.2f}")
    )
    return claims


def _extension_claims() -> list[Claim]:
    sensitivity = run_sensitivity(SensitivityConfig(rates=(0.01, 0.2)))
    decisions = {
        (row[0], row[1], row[2]): row[3] for row in sensitivity.rows
    }
    flips = (
        decisions[("fig1", 0.01, 0.2)] != decisions[("fig1", 0.2, 0.01)]
        and decisions[("fig2", 0.01, 0.2)] != decisions[("fig2", 0.2, 0.01)]
    )
    claims = [
        Claim("ext1", "routing decision flips with the lambda preference",
              flips),
    ]
    load = run_load_sweep(
        LoadConfig(
            setup=TpchSetup(scale=0.001, seed=7),
            interarrival_means=(1.5, 10.0),
            approaches=("ivqp", "federation"),
            rounds=1,
        )
    )
    iv = {(row[0], row[1]): row[2] for row in load.rows}
    claims.append(
        Claim("ext2", "saturating arrivals degrade IVQP and Federation IV",
              iv[(1.5, "ivqp")] < iv[(10.0, "ivqp")]
              and iv[(1.5, "federation")] < iv[(10.0, "federation")])
    )
    return claims


_SECTIONS: list[Callable[[], list[Claim]]] = [
    _fig4_claims,
    _fig5_claims,
    _fig8_claims,
    _fig9_claims,
    _ablation_claims,
    _extension_claims,
]


def validate_all() -> list[Claim]:
    """Run every check; returns the full claim list."""
    claims: list[Claim] = []
    for section in _SECTIONS:
        claims.extend(section())
    return claims


def render_report(claims: list[Claim]) -> str:
    """A printable PASS/FAIL report."""
    table = ResultTable(
        title="Reproduction check (reduced-size runs; see EXPERIMENTS.md)",
        headers=["figure", "status", "claim", "detail"],
    )
    for claim in claims:
        table.add(
            claim.figure,
            "PASS" if claim.passed else "FAIL",
            claim.statement,
            claim.detail,
        )
    failed = sum(1 for claim in claims if not claim.passed)
    footer = (
        f"\n{len(claims) - failed}/{len(claims)} claims hold"
        + (f" — {failed} FAILED" if failed else "")
    )
    return table.render() + footer
