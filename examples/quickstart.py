"""Quickstart: a TPC-H federated DSS with information value-driven routing.

Builds the paper's hybrid architecture (remote base tables + periodically
synchronized local replicas), submits a handful of TPC-H reports, and shows
which plan the IVQP optimizer picked for each and the information value the
delivered report realized.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import quickstart_system


def main() -> None:
    system, queries = quickstart_system(scale=0.002, sync_mean_interval=1.0)

    print("Catalog:")
    print(f"  base tables : {len(system.catalog.table_names)}")
    print(f"  replicated  : {len(system.catalog.replicated_tables)}")
    print(f"  discounts   : lambda_CL={system.rates.computational}, "
          f"lambda_SL={system.rates.synchronization}")
    print()

    # Submit five reports, ten simulated minutes apart.
    for index, query in enumerate(queries[:5]):
        system.submit(query, at=10.0 * (index + 1))
    system.run()

    print("Delivered reports (realized latencies in minutes):")
    for outcome in system.outcomes:
        plan = outcome.plan
        route = "all-replica" if not plan.remote_tables else (
            "all-remote" if not plan.replica_tables else "mixed"
        )
        delay = " (delayed for a sync)" if plan.delayed else ""
        print(f"  {outcome.describe()}  route={route}{delay}")
    print()
    print(f"mean information value: {system.mean_information_value:.4f}")
    print(f"mean computational latency: "
          f"{system.mean_computational_latency:.2f} min")
    print(f"mean synchronization latency: "
          f"{system.mean_synchronization_latency:.2f} min")


if __name__ == "__main__":
    main()
