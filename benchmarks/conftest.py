"""Benchmark-suite helpers.

Every benchmark regenerates one of the paper's figures (at a reduced but
shape-preserving size — the CLI ``python -m repro <fig>`` runs full size)
and prints the same rows/series the figure plots, bypassing pytest's
output capture so they appear in the benchmark log.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capsys):
    """Print through pytest's capture so figures land in the bench output."""

    def _show(text: str) -> None:
        with capsys.disabled():
            print()
            print(text)

    return _show
