"""Property tests: incremental conflict groups == sweep line == oracle.

The online scheduler's :class:`IncrementalConflictGroups` must return, on
every window, *exactly* what :func:`conflict_groups` (the sweep line)
returns over the same range set — same groups, same group order, same
member order — because the per-window GA seeds depend on group index.
This file checks that equivalence three ways:

* against the sweep line itself, under random interleavings of admits
  and retirements (checked after *every* mutation, not just at the end);
* against a brute-force union-find oracle that knows nothing about
  sweeping — connected components of the pairwise
  :meth:`ExecutionRange.overlaps` graph;
* on the adversarial boundary cases the half-open semantics create:
  ranges that touch exactly, duplicated endpoints, and zero-length
  ranges sitting inside other clusters' spans.
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.errors import OptimizationError
from repro.mqo.conflict import (
    ExecutionRange,
    IncrementalConflictGroups,
    conflict_groups,
)

SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

# Endpoints drawn from a coarse grid so exact touches (end == start) and
# duplicate endpoints are common, not measure-zero accidents.
_grid = st.integers(min_value=0, max_value=24).map(lambda tick: tick * 0.5)


@st.composite
def range_sets(draw, max_size: int = 24) -> list[ExecutionRange]:
    """Distinct-id range sets over the grid, zero-length included."""
    endpoints = draw(
        st.lists(st.tuples(_grid, _grid), min_size=1, max_size=max_size)
    )
    ranges = []
    for qid, (a, b) in enumerate(endpoints, start=1):
        start, end = min(a, b), max(a, b)
        ranges.append(ExecutionRange(qid, start, end))
    return ranges


def union_find_oracle(ranges: list[ExecutionRange]) -> list[list[int]]:
    """Connected components of the pairwise overlap graph, sweep-ordered.

    Quadratic and sweep-free: merges every overlapping pair via
    union-find, then orders members and groups the way the sweep line
    emits them — members by ``(start, end, query_id)``, groups by their
    first member's key.
    """
    parent = {rng.query_id: rng.query_id for rng in ranges}

    def find(qid: int) -> int:
        while parent[qid] != qid:
            parent[qid] = parent[parent[qid]]
            qid = parent[qid]
        return qid

    for left in ranges:
        for right in ranges:
            if left.query_id < right.query_id and left.overlaps(right):
                parent[find(left.query_id)] = find(right.query_id)
    components: dict[int, list[ExecutionRange]] = {}
    for rng in ranges:
        components.setdefault(find(rng.query_id), []).append(rng)
    groups = []
    for members in components.values():
        members.sort(key=lambda r: r.sort_key)
        groups.append(members)
    groups.sort(key=lambda members: members[0].sort_key)
    return [[rng.query_id for rng in members] for members in groups]


class TestAgainstOracles:
    @SETTINGS
    @given(ranges=range_sets())
    def test_sweep_line_matches_union_find_oracle(self, ranges):
        assert conflict_groups(ranges) == union_find_oracle(ranges)

    @SETTINGS
    @given(ranges=range_sets(), data=st.data())
    def test_incremental_matches_sweep_after_every_mutation(
        self, ranges, data
    ):
        # Admit in a drawn order; between admits, sometimes retire a
        # drawn present member.  The structure must agree with a
        # from-scratch sweep over the live set at every step.
        order = data.draw(st.permutations(ranges))
        index = IncrementalConflictGroups()
        live: dict[int, ExecutionRange] = {}
        for rng in order:
            index.add(rng)
            live[rng.query_id] = rng
            assert index.groups() == conflict_groups(list(live.values()))
            if len(live) > 1 and data.draw(st.booleans()):
                victim = data.draw(st.sampled_from(sorted(live)))
                index.remove(victim)
                del live[victim]
                assert index.groups() == conflict_groups(list(live.values()))
        assert len(index) == len(live)

    @SETTINGS
    @given(ranges=range_sets())
    def test_drain_to_empty_then_readmit(self, ranges):
        # Retire everything (dispatch order = admit order), then admit
        # everything again: the structure must come back bit-equal.
        index = IncrementalConflictGroups()
        for rng in ranges:
            index.add(rng)
        expected = conflict_groups(ranges)
        assert index.groups() == expected
        for rng in ranges:
            index.remove(rng.query_id)
        assert index.groups() == []
        assert len(index) == 0
        for rng in reversed(ranges):
            index.add(rng)
        assert index.groups() == expected


class TestBoundaries:
    def test_exact_touch_stays_separate(self):
        # Half-open: [0,5) and [5,10) never conflict, in either admit order.
        for first, second in (
            (ExecutionRange(1, 0.0, 5.0), ExecutionRange(2, 5.0, 10.0)),
            (ExecutionRange(2, 5.0, 10.0), ExecutionRange(1, 0.0, 5.0)),
        ):
            index = IncrementalConflictGroups()
            index.add(first)
            index.add(second)
            assert index.groups() == [[1], [2]]

    def test_bridging_range_merges_touching_clusters(self):
        index = IncrementalConflictGroups()
        index.add(ExecutionRange(1, 0.0, 5.0))
        index.add(ExecutionRange(2, 5.0, 10.0))
        index.add(ExecutionRange(3, 4.5, 5.5))  # overlaps both
        assert index.groups() == [[1, 3, 2]]

    def test_removal_splits_a_bridged_cluster(self):
        index = IncrementalConflictGroups()
        index.add(ExecutionRange(1, 0.0, 2.0))
        index.add(ExecutionRange(2, 1.0, 3.0))
        index.add(ExecutionRange(3, 2.5, 4.0))
        assert index.groups() == [[1, 2, 3]]
        index.remove(2)
        assert index.groups() == [[1], [3]]

    def test_zero_length_inside_a_span_joins_the_component(self):
        # [3,3) conflicts with the [0,10) range strictly straddling it —
        # and leaves the component once every straddler is retired.
        index = IncrementalConflictGroups()
        index.add(ExecutionRange(1, 0.0, 10.0))
        index.add(ExecutionRange(2, 3.0, 3.0))
        index.add(ExecutionRange(3, 9.0, 12.0))
        assert index.groups() == conflict_groups(
            [
                ExecutionRange(1, 0.0, 10.0),
                ExecutionRange(2, 3.0, 3.0),
                ExecutionRange(3, 9.0, 12.0),
            ]
        ) == [[1, 2, 3]]
        index.remove(1)
        assert index.groups() == [[2], [3]]
        index.remove(3)
        assert index.groups() == [[2]]

    def test_zero_length_matches_sweep_at_cluster_edges(self):
        ranges = [
            ExecutionRange(1, 2.0, 2.0),  # at a cluster's left edge
            ExecutionRange(2, 2.0, 6.0),
            ExecutionRange(3, 6.0, 6.0),  # at its right edge
        ]
        index = IncrementalConflictGroups()
        for rng in ranges:
            index.add(rng)
        assert index.groups() == conflict_groups(ranges) == [[1], [2], [3]]

    def test_duplicate_endpoints_order_by_query_id(self):
        ranges = [
            ExecutionRange(5, 1.0, 4.0),
            ExecutionRange(2, 1.0, 4.0),
            ExecutionRange(9, 1.0, 4.0),
        ]
        index = IncrementalConflictGroups()
        for rng in ranges:
            index.add(rng)
        assert index.groups() == conflict_groups(ranges) == [[2, 5, 9]]


class TestContracts:
    def test_double_admit_rejected(self):
        index = IncrementalConflictGroups()
        index.add(ExecutionRange(1, 0.0, 1.0))
        with pytest.raises(OptimizationError):
            index.add(ExecutionRange(1, 2.0, 3.0))

    def test_retire_unknown_rejected(self):
        with pytest.raises(OptimizationError):
            IncrementalConflictGroups().remove(7)

    def test_inverted_range_rejected(self):
        with pytest.raises(OptimizationError):
            IncrementalConflictGroups().add(ExecutionRange(1, 3.0, 2.0))

    def test_membership_protocol(self):
        index = IncrementalConflictGroups()
        index.add(ExecutionRange(4, 0.0, 1.0))
        assert 4 in index
        assert 5 not in index
        assert len(index) == 1
