"""Cross-module integration tests.

These exercise whole pipelines — data generation → catalog → cost model →
optimizer → simulation → outcome accounting — and check the paper's core
claims at small scale (the benchmark suite re-checks them at figure scale).
"""

from __future__ import annotations

import pytest

from repro.baselines import federation_router, ivqp_router, warehouse_router
from repro.core.value import DiscountRates, information_value
from repro.experiments.config import SyntheticSetup, TpchSetup
from repro.experiments.fig9 import Fig9Config, build_mqo_scheduler
from repro.experiments.runner import run_stream
from repro.federation.system import build_system
from repro.mqo.ga import GAConfig
from repro.workload.generator import overlapping_workload, random_queries


@pytest.fixture(scope="module")
def tiny_setup() -> TpchSetup:
    return TpchSetup(scale=0.0005, seed=7)


class TestRealizedVsEstimated:
    """The executor must realize what the plan estimated (no contention)."""

    def test_uncontended_outcome_matches_plan_estimate(self, tiny_setup):
        config = tiny_setup.system_config(
            "ivqp", DiscountRates(0.02, 0.02), sync_mean_interval=1.0
        )
        system = build_system(config, ivqp_router)
        query = tiny_setup.queries()[2]  # Q3
        system.submit(query, at=25.0)
        system.run()
        outcome = system.outcomes[0]
        plan = outcome.plan
        assert outcome.computational_latency == pytest.approx(
            plan.computational_latency, abs=1e-6
        )
        # Realized SL can only be <= estimated (syncs during execution
        # can make data fresher, never staler).
        assert (
            outcome.synchronization_latency
            <= plan.synchronization_latency + 1e-6
        )
        assert outcome.information_value >= plan.information_value - 1e-6

    def test_realized_iv_formula_consistency(self, tiny_setup):
        config = tiny_setup.system_config(
            "federation", DiscountRates(0.03, 0.04), sync_mean_interval=1.0
        )
        system = build_system(config, federation_router)
        query = tiny_setup.queries()[0]
        system.submit(query, at=10.0)
        system.run()
        outcome = system.outcomes[0]
        assert outcome.information_value == pytest.approx(
            information_value(
                query.business_value,
                outcome.computational_latency,
                outcome.synchronization_latency,
                outcome.plan.rates,
            )
        )


class TestHeadToHeadRouting:
    def test_ivqp_stream_beats_baselines(self, tiny_setup):
        rates = DiscountRates(0.05, 0.05)
        results = {}
        for approach, router in (
            ("ivqp", ivqp_router),
            ("federation", federation_router),
            ("warehouse", warehouse_router),
        ):
            config = tiny_setup.system_config(
                approach, rates, sync_mean_interval=1.0
            )
            results[approach] = run_stream(
                config, approach, tiny_setup.queries(),
                mean_interarrival=10.0,
            ).mean_iv
        assert results["ivqp"] >= results["federation"] - 1e-6
        assert results["ivqp"] >= results["warehouse"] - 1e-6

    def test_federation_insensitive_to_sync_rate(self, tiny_setup):
        rates = DiscountRates(0.01, 0.01)
        values = []
        for interval in (100.0, 0.5):
            config = tiny_setup.system_config(
                "federation", rates, sync_mean_interval=interval
            )
            values.append(
                run_stream(
                    config, "federation", tiny_setup.queries()[:8],
                    mean_interarrival=10.0,
                ).mean_iv
            )
        assert values[0] == pytest.approx(values[1], rel=1e-6)


class TestMqoPipeline:
    def test_fig9_stack_mqo_never_loses(self):
        config = Fig9Config(
            num_tables=30, replicated_count=15,
            ga=GAConfig(generations=10),
        )
        scheduler, setup = build_mqo_scheduler(config)
        queries = random_queries(setup.instance, count=8, seed=5)
        workload = overlapping_workload(queries, 0.5, seed=6, burst_size=4)
        mqo = scheduler.schedule(workload)
        fifo = scheduler.fifo(workload)
        assert (
            mqo.total_information_value >= fifo.total_information_value - 1e-9
        )

    def test_ga_seeded_with_arrival_order_never_below_it(self):
        config = Fig9Config(
            num_tables=30, replicated_count=15,
            ga=GAConfig(generations=5),
        )
        scheduler, setup = build_mqo_scheduler(config)
        queries = random_queries(setup.instance, count=6, seed=9)
        workload = overlapping_workload(queries, 1.0, seed=2, burst_size=6)
        evaluator = scheduler._evaluator(workload)
        arrival_order = [
            query.query_id for query in workload.sorted_by_arrival()
        ]
        arrival_total = evaluator.evaluate(
            arrival_order
        ).total_information_value
        decision = scheduler.schedule(workload)
        assert decision.total_information_value >= arrival_total - 1e-9


class TestSyntheticPipeline:
    def test_synthetic_stream_all_approaches(self):
        setup = SyntheticSetup(
            num_tables=30, num_sites=4, replicated_count=15,
            placement="skewed", seed=4,
        )
        queries = random_queries(setup.instance, count=20, seed=8)
        rates = DiscountRates(0.05, 0.05)
        for approach in ("ivqp", "federation", "warehouse"):
            config = setup.system_config(
                approach, rates, sync_mean_interval=0.5
            )
            result = run_stream(
                config, approach, queries, mean_interarrival=10.0
            )
            assert len(result.outcomes) == 20
            assert 0.0 <= result.mean_iv <= 1.0

    def test_business_value_weighting_carries_through(self):
        setup = SyntheticSetup(
            num_tables=10, num_sites=2, replicated_count=5, seed=4
        )
        queries = random_queries(
            setup.instance, count=4, seed=8, business_value=5.0
        )
        config = setup.system_config(
            "federation", DiscountRates(0.01, 0.01), sync_mean_interval=1.0
        )
        result = run_stream(config, "federation", queries, 50.0)
        for outcome in result.outcomes:
            assert outcome.information_value <= 5.0
            assert outcome.information_value > 1.0  # BV scaling visible


class TestStressScale:
    def test_hundreds_of_queries_drain_cleanly(self):
        setup = SyntheticSetup(
            num_tables=40, num_sites=5, replicated_count=20, seed=13
        )
        queries = random_queries(setup.instance, count=120, seed=14)
        config = setup.system_config(
            "ivqp", DiscountRates(0.05, 0.05), sync_mean_interval=0.5
        )
        result = run_stream(
            config, "ivqp", queries, mean_interarrival=5.0, rounds=2
        )
        assert len(result.outcomes) == 240
        # Completion order is causally consistent.
        completion_times = [o.completed_at for o in result.outcomes]
        assert completion_times == sorted(completion_times)
