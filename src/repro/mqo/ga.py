"""The generational genetic algorithm (paper Section 3.2).

"Initially a random set of chromosomes is created for the population.  The
chromosomes are evaluated ... and the best ones are chosen to be parents.
The parents recombine to produce children ... and occasionally a mutation
may arise ...  The children are ranked based on the evaluation function,
and the best subset of the children is chosen to be the parents of the next
generation ...  The generational loop ends after some stopping condition is
met; we chose to end after 50 generations had passed."

Each generation's not-yet-scored chromosomes are evaluated as one batch
through a pluggable executor (``GAConfig.executor``): ``"serial"`` (the
default), ``"thread"`` (a ``ThreadPoolExecutor``) or ``"process"`` (a
``ProcessPoolExecutor``; requires a picklable fitness callable).  Batch
membership, cache updates and all counters are decided in the main thread
in deterministic order, so :class:`GAResult` is bit-for-bit identical
regardless of the executor — parallelism only changes *where* fitness
calls run, never which run or how their results are applied.

A ``fitness_batch`` callable (scores a whole list of chromosomes in one
call, e.g. :meth:`repro.mqo.vector.VectorizedEvaluator.fitness_batch`)
takes precedence over both the per-chromosome ``fitness`` and the
executor pool wherever the GA scores anything, so every value a run sees
comes from one consistent scorer.
"""

from __future__ import annotations

import typing
import warnings
from collections.abc import Callable, Sequence
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.errors import OptimizationError
from repro.mqo.chromosome import (
    order_crossover,
    random_permutation,
    swap_mutation,
)
from repro.obs.profile import PROFILER, profiled
from repro.sim.rng import RandomSource

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mqo.evaluator import EvaluatorStats

__all__ = ["BatchFitness", "Fitness", "GAConfig", "GAResult", "GeneticAlgorithm"]

Fitness = Callable[[list[int]], float]
BatchFitness = Callable[[list[list[int]]], Sequence[float]]

_EXECUTORS = ("serial", "thread", "process")


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of the GA (defaults per DESIGN.md §6.4)."""

    population_size: int = 32
    generations: int = 50
    parent_fraction: float = 0.5
    mutation_rate: float = 0.2
    elitism: int = 2
    #: How generation batches are scored: "serial", "thread" or "process".
    executor: str = "serial"
    #: Worker count for pooled executors (``None`` = library default).
    max_workers: int | None = None

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise OptimizationError("population_size must be >= 2")
        if self.generations < 1:
            raise OptimizationError("generations must be >= 1")
        if not 0.0 < self.parent_fraction <= 1.0:
            raise OptimizationError("parent_fraction must be in (0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise OptimizationError("mutation_rate must be in [0, 1]")
        if not 0 <= self.elitism < self.population_size:
            raise OptimizationError("elitism must be in [0, population_size)")
        if self.executor not in _EXECUTORS:
            raise OptimizationError(
                f"executor must be one of {_EXECUTORS}, got {self.executor!r}"
            )
        if self.max_workers is not None and self.max_workers < 1:
            raise OptimizationError("max_workers must be >= 1")


@dataclass
class GAResult:
    """Outcome of one GA run.

    ``fitness_calls`` counts real fitness-function invocations (cache
    misses); ``cache_hits`` counts chromosome scorings served from the
    memo cache.  Their sum is every scoring the run requested.
    """

    best: list[int]
    best_fitness: float
    generations_run: int
    history: list[float] = field(default_factory=list)
    fitness_calls: int = 0
    cache_hits: int = 0
    evaluator_stats: "EvaluatorStats | None" = None

    @property
    def evaluations(self) -> int:
        """Deprecated alias for :attr:`fitness_calls` (one release)."""
        warnings.warn(
            "GAResult.evaluations is deprecated; use fitness_calls",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.fitness_calls


class GeneticAlgorithm:
    """Permutation GA with rank selection and elitism."""

    def __init__(
        self,
        genes: Sequence[int],
        fitness: Fitness,
        config: GAConfig | None = None,
        seed: int = 0,
        evaluator_stats: "EvaluatorStats | None" = None,
        fitness_batch: BatchFitness | None = None,
    ) -> None:
        if not genes:
            raise OptimizationError("GA needs at least one gene")
        self.genes = list(genes)
        self.fitness = fitness
        #: Whole-batch scorer; when set it handles every scoring the run
        #: performs (cache misses included), bypassing ``fitness`` and the
        #: executor pool, so values are consistent across paths.
        self.fitness_batch = fitness_batch
        self.config = config or GAConfig()
        self.rng = RandomSource(seed, "ga")
        self.evaluator_stats = evaluator_stats
        self._cache: dict[tuple[int, ...], float] = {}
        self._fitness_calls = 0
        self._cache_hits = 0

    # -- scoring -----------------------------------------------------------

    def _score(self, chromosome: list[int]) -> float:
        key = tuple(chromosome)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if self.fitness_batch is not None:
            value = float(self.fitness_batch([list(chromosome)])[0])
        else:
            value = self.fitness(chromosome)
        self._cache[key] = value
        self._fitness_calls += 1
        return value

    def _score_batch(
        self, population: Sequence[Sequence[int]], pool: Executor | None
    ) -> None:
        """Score a population's unseen chromosomes as one batch.

        Pending membership, hit/miss counting and cache insertion all
        happen here, in population order — the pool only executes the
        fitness calls, so results are executor-independent.
        """
        pending: list[tuple[int, ...]] = []
        pending_set: set[tuple[int, ...]] = set()
        for chromosome in population:
            key = tuple(chromosome)
            if key in self._cache or key in pending_set:
                self._cache_hits += 1
            else:
                pending_set.add(key)
                pending.append(key)
        if not pending:
            return
        self._fitness_calls += len(pending)
        chromosomes = [list(key) for key in pending]
        if self.fitness_batch is not None:
            values = [float(v) for v in self.fitness_batch(chromosomes)]
        elif pool is None:
            values = [self.fitness(chromosome) for chromosome in chromosomes]
        else:
            values = list(pool.map(self.fitness, chromosomes))
        for key, value in zip(pending, values):
            self._cache[key] = value

    def _make_pool(self) -> Executor | None:
        if self.config.executor == "thread":
            return ThreadPoolExecutor(max_workers=self.config.max_workers)
        if self.config.executor == "process":
            return ProcessPoolExecutor(max_workers=self.config.max_workers)
        return None

    # -- evolution ---------------------------------------------------------

    @profiled("ga.run")
    def run(self, seed_chromosomes: Sequence[Sequence[int]] = ()) -> GAResult:
        """Evolve and return the best permutation found.

        ``seed_chromosomes`` lets callers inject known-good orders (e.g.
        arrival order) into the initial population.
        """
        cfg = self.config
        population: list[list[int]] = [list(c) for c in seed_chromosomes]
        while len(population) < cfg.population_size:
            population.append(random_permutation(self.genes, self.rng))
        population = population[: cfg.population_size]

        pool = self._make_pool()
        try:
            self._score_batch(population, pool)
            history: list[float] = []
            best: list[int] = population[0]
            best_fitness = self._score(best)

            for _generation in range(cfg.generations):
                with PROFILER.scope("ga.generation"):
                    ranked = sorted(population, key=self._score, reverse=True)
                    if self._score(ranked[0]) > best_fitness:
                        best = list(ranked[0])
                        best_fitness = self._score(ranked[0])
                    history.append(best_fitness)

                    parent_count = max(
                        2, int(cfg.parent_fraction * cfg.population_size)
                    )
                    parents = ranked[:parent_count]

                    next_population: list[list[int]] = [
                        list(chromosome) for chromosome in ranked[: cfg.elitism]
                    ]
                    while len(next_population) < cfg.population_size:
                        mother = self.rng.choice(parents)
                        father = self.rng.choice(parents)
                        child = order_crossover(mother, father, self.rng)
                        if self.rng.uniform(0.0, 1.0) < cfg.mutation_rate:
                            child = swap_mutation(child, self.rng)
                        next_population.append(child)
                    population = next_population
                    self._score_batch(population, pool)
        finally:
            if pool is not None:
                pool.shutdown()

        # Final ranking of the last generation.
        ranked = sorted(population, key=self._score, reverse=True)
        if self._score(ranked[0]) > best_fitness:
            best = list(ranked[0])
            best_fitness = self._score(ranked[0])
        history.append(best_fitness)

        return GAResult(
            best=best,
            best_fitness=best_fitness,
            generations_run=cfg.generations,
            history=history,
            fitness_calls=self._fitness_calls,
            cache_hits=self._cache_hits,
            evaluator_stats=self.evaluator_stats,
        )
