"""ASCII bar charts — the paper's figures, in a terminal.

Figures 5, 8 and 9 are grouped bar charts; :func:`bar_chart` renders the
same visual from a result table so ``python -m repro fig5 --chart`` can be
eyeballed against the paper's plots without any plotting dependency.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import ConfigError
from repro.reporting.tables import ResultTable

__all__ = ["bar_chart", "grouped_bar_chart"]

_BLOCK = "#"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    title: str = "",
    max_value: float | None = None,
) -> str:
    """One horizontal bar per (label, value)."""
    if len(labels) != len(values):
        raise ConfigError("labels and values must align")
    if not labels:
        raise ConfigError("bar_chart needs at least one bar")
    if any(value < 0 for value in values):
        raise ConfigError("bar_chart values must be >= 0")
    peak = max_value if max_value is not None else max(values)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        filled = int(round(width * min(value, peak) / peak))
        bar = _BLOCK * filled
        lines.append(f"{str(label):>{label_width}} |{bar:<{width}}| {value:.4f}")
    return "\n".join(lines)


def grouped_bar_chart(
    table: ResultTable,
    group_by: str | Sequence[str],
    series: str,
    value: str,
    width: int = 40,
) -> str:
    """Render a result table as grouped bars (one block per group).

    Parameters
    ----------
    table:
        The experiment output.
    group_by:
        Column (or columns) defining the groups (e.g. ``fq_fs`` or
        ``("placement", "sites")``).
    series:
        Column naming the bars inside each group (e.g. ``approach``).
    value:
        Numeric column to plot (e.g. ``mean_iv``).
    """
    group_columns = [group_by] if isinstance(group_by, str) else list(group_by)
    for column in (*group_columns, series, value):
        if column not in table.headers:
            raise ConfigError(f"table has no column {column!r}")
    group_indices = [table.headers.index(column) for column in group_columns]
    series_index = table.headers.index(series)
    value_index = table.headers.index(value)

    groups: dict = {}
    order: list = []
    for row in table.rows:
        key = tuple(row[index] for index in group_indices)
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append((str(row[series_index]), float(row[value_index])))

    peak = max(
        (v for bars in groups.values() for _label, v in bars), default=1.0
    )
    blocks = [table.title, ""]
    for key in order:
        labels = [label for label, _v in groups[key]]
        values = [v for _label, v in groups[key]]
        header = ", ".join(
            f"{column} = {part}" for column, part in zip(group_columns, key)
        )
        blocks.append(
            bar_chart(
                labels, values, width=width, title=header, max_value=peak,
            )
        )
        blocks.append("")
    return "\n".join(blocks).rstrip()
