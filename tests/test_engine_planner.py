"""Unit tests: statistics, the greedy planner and the Database container."""

from __future__ import annotations

import pytest

from repro.engine.expr import Col, Const
from repro.engine.planner import Database, Planner
from repro.engine.query import QueryBuilder
from repro.engine.schema import Column, DType, TableSchema
from repro.engine.stats import (
    ColumnStats,
    TableStats,
    estimate_selectivity,
    join_selectivity,
)
from repro.engine.table import Table
from repro.errors import EngineError


def build_db() -> Database:
    db = Database()
    customers = Table(
        TableSchema("customer", (
            Column("c_id", DType.INT), Column("c_nation", DType.INT),
        )),
        rows=[(i, i % 5) for i in range(50)],
    )
    orders = Table(
        TableSchema("orders", (
            Column("o_id", DType.INT), Column("o_cust", DType.INT),
            Column("o_price", DType.FLOAT),
        )),
        rows=[(i, i % 50, float(i)) for i in range(400)],
    )
    db.add(customers)
    db.add(orders)
    return db


class TestDatabase:
    def test_duplicate_table_rejected(self):
        db = build_db()
        with pytest.raises(EngineError):
            db.add(Table(TableSchema("orders", (Column("x", DType.INT),))))

    def test_missing_table_raises(self):
        with pytest.raises(EngineError):
            build_db().table("nope")
        with pytest.raises(EngineError):
            build_db().stats("nope")

    def test_contains_and_names(self):
        db = build_db()
        assert "orders" in db
        assert db.table_names == ["customer", "orders"]

    def test_refresh_stats_after_load(self):
        db = build_db()
        before = db.stats("customer").row_count
        db.table("customer").insert((99, 0))
        db.refresh_stats("customer")
        assert db.stats("customer").row_count == before + 1


class TestStatistics:
    def test_column_stats_from_values(self):
        stats = ColumnStats.from_values([1, 2, 2, None])
        assert stats.distinct == 2
        assert stats.minimum == 1
        assert stats.maximum == 2
        assert stats.null_fraction == pytest.approx(0.25)

    def test_column_stats_all_null(self):
        stats = ColumnStats.from_values([None, None])
        assert stats.distinct == 0
        assert stats.null_fraction == 1.0

    def test_table_stats_from_table(self):
        stats = TableStats.from_table(build_db().table("customer"))
        assert stats.row_count == 50
        assert stats.column("c_nation").distinct == 5

    def test_equality_selectivity_uses_distinct(self):
        db = build_db()
        by_alias = {"c": db.stats("customer")}
        predicate = Col("c.c_nation") == Const(2)
        assert estimate_selectivity(predicate, by_alias) == pytest.approx(1 / 5)

    def test_range_selectivity_uses_min_max(self):
        db = build_db()
        by_alias = {"o": db.stats("orders")}
        predicate = Col("o.o_price") < Const(100.0)
        selectivity = estimate_selectivity(predicate, by_alias)
        assert 0.2 <= selectivity <= 0.3  # ~ 100/399

    def test_flipped_constant_side(self):
        db = build_db()
        by_alias = {"o": db.stats("orders")}
        predicate = Const(100.0) > Col("o.o_price")  # same as o_price < 100
        selectivity = estimate_selectivity(predicate, by_alias)
        assert 0.2 <= selectivity <= 0.3

    def test_conjunction_multiplies(self):
        db = build_db()
        by_alias = {"c": db.stats("customer")}
        predicate = (Col("c.c_nation") == Const(1)) & (
            Col("c.c_nation") == Const(2)
        )
        assert estimate_selectivity(predicate, by_alias) == pytest.approx(1 / 25)

    def test_unknown_alias_falls_back(self):
        predicate = Col("x.col") == Const(1)
        assert estimate_selectivity(predicate, {}) == pytest.approx(1 / 3)

    def test_join_selectivity_uses_larger_distinct(self):
        db = build_db()
        by_alias = {"c": db.stats("customer"), "o": db.stats("orders")}
        selectivity = join_selectivity("c", "c_id", "o", "o_cust", by_alias)
        assert selectivity == pytest.approx(1 / 50)


class TestPlanner:
    def test_single_table_plan(self):
        db = build_db()
        query = (
            QueryBuilder("single")
            .table("orders", "o")
            .where(Col("o.o_price") >= Const(100.0))
            .select("id", Col("o.o_id"))
            .build()
        )
        plan = Planner(db).plan(query)
        rows = plan.execute()
        assert len(rows) == 300
        assert plan.join_order == ("o",)

    def test_join_order_starts_with_smaller_table(self):
        db = build_db()
        query = (
            QueryBuilder("join")
            .table("customer", "c").table("orders", "o")
            .join("c.c_id", "o.o_cust")
            .build()
        )
        plan = Planner(db).plan(query)
        assert plan.join_order[0] == "c"

    def test_join_produces_correct_rows(self):
        db = build_db()
        query = (
            QueryBuilder("join")
            .table("customer", "c").table("orders", "o")
            .join("c.c_id", "o.o_cust")
            .group("c.c_nation")
            .agg("count", None, "n")
            .build()
        )
        rows = Planner(db).plan(query).execute()
        assert sum(row["n"] for row in rows) == 400

    def test_estimate_tracks_actual_within_order_of_magnitude(self):
        db = build_db()
        query = (
            QueryBuilder("est")
            .table("customer", "c").table("orders", "o")
            .join("c.c_id", "o.o_cust")
            .where(Col("o.o_price") > Const(200.0))
            .group("c.c_nation")
            .agg("sum", Col("o.o_price"), "rev")
            .build()
        )
        plan = Planner(db).plan(query)
        plan.execute()
        estimated = plan.estimate.work_units
        actual = plan.stats.total_work
        assert actual / 10 <= estimated <= actual * 10

    def test_cross_join_fallback(self):
        db = build_db()
        query = (
            QueryBuilder("cross")
            .table("customer", "c").table("orders", "o")
            .build()
        )
        rows = Planner(db).plan(query).execute()
        assert len(rows) == 50 * 400

    def test_residual_multi_table_filter(self):
        db = build_db()
        query = (
            QueryBuilder("residual")
            .table("customer", "c").table("orders", "o")
            .join("c.c_id", "o.o_cust")
            .where(Col("o.o_price") > Col("c.c_nation"))
            .select("oid", Col("o.o_id"))
            .build()
        )
        rows = Planner(db).plan(query).execute()
        # price == o_id as float, nation in [0, 5); almost all pass.
        assert 380 <= len(rows) <= 400

    def test_order_and_limit(self):
        db = build_db()
        query = (
            QueryBuilder("top")
            .table("orders", "o")
            .select("price", Col("o.o_price"))
            .order("price", descending=True)
            .take(3)
            .build()
        )
        rows = Planner(db).plan(query).execute()
        assert [row["price"] for row in rows] == [399.0, 398.0, 397.0]

    def test_self_join_with_aliases(self):
        db = build_db()
        query = (
            QueryBuilder("self")
            .table("customer", "c1").table("customer", "c2")
            .join("c1.c_nation", "c2.c_nation")
            .agg("count", None, "pairs")
            .build()
        )
        rows = Planner(db).plan(query).execute()
        assert rows[0]["pairs"] == 5 * 10 * 10  # 5 nations x 10x10 members
