"""Unit tests: engine schemas and in-memory tables."""

from __future__ import annotations

import pytest

from repro.engine.schema import Column, DType, TableSchema
from repro.engine.table import Table
from repro.errors import EngineError


def sample_schema() -> TableSchema:
    return TableSchema(
        "orders",
        (
            Column("o_orderkey", DType.INT),
            Column("o_totalprice", DType.FLOAT),
            Column("o_status", DType.STR),
            Column("o_date", DType.DATE),
        ),
        primary_key=("o_orderkey",),
    )


class TestSchema:
    def test_column_rejects_unknown_dtype(self):
        with pytest.raises(EngineError):
            Column("x", "decimal")

    def test_column_rejects_empty_name(self):
        with pytest.raises(EngineError):
            Column("", DType.INT)

    def test_schema_rejects_duplicate_columns(self):
        with pytest.raises(EngineError):
            TableSchema("t", (Column("a", DType.INT), Column("a", DType.INT)))

    def test_schema_rejects_empty_columns(self):
        with pytest.raises(EngineError):
            TableSchema("t", ())

    def test_schema_rejects_unknown_pk_column(self):
        with pytest.raises(EngineError):
            TableSchema("t", (Column("a", DType.INT),), primary_key=("b",))

    def test_column_lookup_and_index(self):
        schema = sample_schema()
        assert schema.column("o_status").dtype == DType.STR
        assert schema.index_of("o_totalprice") == 1
        with pytest.raises(EngineError):
            schema.column("missing")
        with pytest.raises(EngineError):
            schema.index_of("missing")

    def test_row_width_sums_column_widths(self):
        schema = sample_schema()
        assert schema.row_width_bytes == 8 + 8 + 24 + 8

    def test_rename_keeps_columns(self):
        renamed = sample_schema().rename("orders_p1")
        assert renamed.name == "orders_p1"
        assert renamed.column_names == sample_schema().column_names


class TestTable:
    def test_insert_and_iterate(self):
        table = Table(sample_schema())
        table.insert((1, 10.0, "O", 100))
        table.insert((2, 20.0, "F", 200))
        assert table.row_count == 2
        assert list(table)[1] == (2, 20.0, "F", 200)

    def test_arity_mismatch_rejected(self):
        table = Table(sample_schema())
        with pytest.raises(EngineError):
            table.insert((1, 10.0))

    def test_type_validation(self):
        table = Table(sample_schema())
        with pytest.raises(EngineError):
            table.insert(("one", 10.0, "O", 100))  # int column gets str

    def test_bool_is_not_an_int(self):
        table = Table(sample_schema())
        with pytest.raises(EngineError):
            table.insert((True, 10.0, "O", 100))

    def test_int_accepted_in_float_column(self):
        table = Table(sample_schema())
        table.insert((1, 10, "O", 100))
        assert table.row_count == 1

    def test_nulls_allowed(self):
        table = Table(sample_schema())
        table.insert((1, None, None, None))
        assert table.column_values("o_totalprice") == [None]

    def test_validation_can_be_skipped(self):
        table = Table(sample_schema())
        table.insert(("bad", "types", "here", "ok"), validate=False)
        assert table.row_count == 1

    def test_column_values_in_row_order(self):
        table = Table(sample_schema(), rows=[(3, 1.0, "a", 1), (1, 2.0, "b", 2)])
        assert table.column_values("o_orderkey") == [3, 1]

    def test_size_bytes(self):
        table = Table(sample_schema(), rows=[(1, 1.0, "x", 1)] * 10)
        assert table.size_bytes == 10 * sample_schema().row_width_bytes

    def test_extend(self):
        table = Table(sample_schema())
        table.extend([(1, 1.0, "a", 1), (2, 2.0, "b", 2)])
        assert len(table) == 2
