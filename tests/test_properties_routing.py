"""Property tests: the precomputed routing table on randomized worlds."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.optimizer import IVQPOptimizer
from repro.core.routing import RoutingTable
from repro.core.value import DiscountRates
from repro.federation.catalog import Catalog, FixedSyncSchedule, TableDef
from repro.federation.costmodel import StaticCostProvider
from repro.workload.query import DSSQuery


def build_world(periods, offset_fractions, costs_base, cost_step):
    catalog = Catalog()
    names = []
    for index, (period, fraction) in enumerate(zip(periods, offset_fractions)):
        name = f"T{index}"
        names.append(name)
        catalog.add_table(TableDef(name, site=index, row_count=500))
        offset = max(period * fraction, 1e-3)
        times = [offset + k * period for k in range(60)]
        catalog.add_replica(name, FixedSyncSchedule(times, tail_period=period))
    costs = {k: costs_base + cost_step * k for k in range(len(names) + 1)}
    provider = StaticCostProvider(catalog, costs)
    query = DSSQuery(query_id=1, name="prop", tables=tuple(names))
    return catalog, provider, query


@settings(max_examples=25, deadline=None)
@given(
    periods=st.lists(
        st.floats(min_value=3.0, max_value=15.0), min_size=1, max_size=3
    ),
    offset_fractions=st.lists(
        st.floats(min_value=0.1, max_value=0.9), min_size=3, max_size=3
    ),
    rate=st.floats(min_value=0.02, max_value=0.25),
    submit=st.floats(min_value=0.0, max_value=35.0),
    costs_base=st.floats(min_value=0.5, max_value=3.0),
    cost_step=st.floats(min_value=0.5, max_value=3.0),
)
def test_routing_table_stays_near_live_optimum(
    periods, offset_fractions, rate, submit, costs_base, cost_step
):
    """Registered routing answers stay within 10% of the live search and
    never exceed it (both optimize the same objective, the table over a
    restricted candidate set)."""
    catalog, provider, query = build_world(
        periods, offset_fractions, costs_base, cost_step
    )
    rates = DiscountRates.symmetric(rate)
    table = RoutingTable(catalog, provider, rates, horizon=60.0)
    table.register(query)

    routed = table.route(query, submit)
    live = IVQPOptimizer(catalog, provider, rates).choose_plan(query, submit)
    assert routed.information_value <= live.information_value + 1e-9
    assert routed.information_value >= 0.9 * live.information_value
    # Structural sanity of the routed plan.
    assert routed.submitted_at == submit
    assert routed.start_time >= submit
    assert {version.table for version in routed.versions} == set(query.tables)


@settings(max_examples=25, deadline=None)
@given(
    period=st.floats(min_value=4.0, max_value=12.0),
    rate=st.floats(min_value=0.02, max_value=0.2),
    probes=st.lists(
        st.floats(min_value=0.0, max_value=50.0), min_size=1, max_size=8
    ),
)
def test_routing_is_deterministic_and_fallback_safe(period, rate, probes):
    catalog, provider, query = build_world(
        [period], [0.5, 0.5, 0.5], 1.0, 2.0
    )
    rates = DiscountRates.symmetric(rate)
    table = RoutingTable(catalog, provider, rates, horizon=55.0)
    table.register(query)
    for probe in probes:
        first = table.route(query, probe)
        second = table.route(query, probe)
        assert first.information_value == pytest.approx(
            second.information_value
        )
    assert table.stats.lookups == 2 * len(probes)
