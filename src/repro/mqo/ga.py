"""The generational genetic algorithm (paper Section 3.2).

"Initially a random set of chromosomes is created for the population.  The
chromosomes are evaluated ... and the best ones are chosen to be parents.
The parents recombine to produce children ... and occasionally a mutation
may arise ...  The children are ranked based on the evaluation function,
and the best subset of the children is chosen to be the parents of the next
generation ...  The generational loop ends after some stopping condition is
met; we chose to end after 50 generations had passed."
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.errors import OptimizationError
from repro.mqo.chromosome import (
    order_crossover,
    random_permutation,
    swap_mutation,
)
from repro.sim.rng import RandomSource

__all__ = ["GAConfig", "GAResult", "GeneticAlgorithm"]

Fitness = Callable[[list[int]], float]


@dataclass(frozen=True)
class GAConfig:
    """Hyper-parameters of the GA (defaults per DESIGN.md §6.4)."""

    population_size: int = 32
    generations: int = 50
    parent_fraction: float = 0.5
    mutation_rate: float = 0.2
    elitism: int = 2

    def __post_init__(self) -> None:
        if self.population_size < 2:
            raise OptimizationError("population_size must be >= 2")
        if self.generations < 1:
            raise OptimizationError("generations must be >= 1")
        if not 0.0 < self.parent_fraction <= 1.0:
            raise OptimizationError("parent_fraction must be in (0, 1]")
        if not 0.0 <= self.mutation_rate <= 1.0:
            raise OptimizationError("mutation_rate must be in [0, 1]")
        if not 0 <= self.elitism < self.population_size:
            raise OptimizationError("elitism must be in [0, population_size)")


@dataclass
class GAResult:
    """Outcome of one GA run."""

    best: list[int]
    best_fitness: float
    generations_run: int
    history: list[float] = field(default_factory=list)
    evaluations: int = 0


class GeneticAlgorithm:
    """Permutation GA with rank selection and elitism."""

    def __init__(
        self,
        genes: Sequence[int],
        fitness: Fitness,
        config: GAConfig | None = None,
        seed: int = 0,
    ) -> None:
        if not genes:
            raise OptimizationError("GA needs at least one gene")
        self.genes = list(genes)
        self.fitness = fitness
        self.config = config or GAConfig()
        self.rng = RandomSource(seed, "ga")
        self._cache: dict[tuple[int, ...], float] = {}
        self._evaluations = 0

    def _score(self, chromosome: list[int]) -> float:
        key = tuple(chromosome)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        value = self.fitness(chromosome)
        self._cache[key] = value
        self._evaluations += 1
        return value

    def run(self, seed_chromosomes: Sequence[Sequence[int]] = ()) -> GAResult:
        """Evolve and return the best permutation found.

        ``seed_chromosomes`` lets callers inject known-good orders (e.g.
        arrival order) into the initial population.
        """
        cfg = self.config
        population: list[list[int]] = [list(c) for c in seed_chromosomes]
        while len(population) < cfg.population_size:
            population.append(random_permutation(self.genes, self.rng))
        population = population[: cfg.population_size]

        history: list[float] = []
        best: list[int] = population[0]
        best_fitness = self._score(best)

        for _generation in range(cfg.generations):
            ranked = sorted(population, key=self._score, reverse=True)
            if self._score(ranked[0]) > best_fitness:
                best = list(ranked[0])
                best_fitness = self._score(ranked[0])
            history.append(best_fitness)

            parent_count = max(2, int(cfg.parent_fraction * cfg.population_size))
            parents = ranked[:parent_count]

            next_population: list[list[int]] = [
                list(chromosome) for chromosome in ranked[: cfg.elitism]
            ]
            while len(next_population) < cfg.population_size:
                mother = self.rng.choice(parents)
                father = self.rng.choice(parents)
                child = order_crossover(mother, father, self.rng)
                if self.rng.uniform(0.0, 1.0) < cfg.mutation_rate:
                    child = swap_mutation(child, self.rng)
                next_population.append(child)
            population = next_population

        # Final ranking of the last generation.
        ranked = sorted(population, key=self._score, reverse=True)
        if self._score(ranked[0]) > best_fitness:
            best = list(ranked[0])
            best_fitness = self._score(ranked[0])
        history.append(best_fitness)

        return GAResult(
            best=best,
            best_fitness=best_fitness,
            generations_run=cfg.generations,
            history=history,
            evaluations=self._evaluations,
        )
