"""Query cost model: table-location combos → processing/transmission time.

Section 3.1: "we only need to compile the query four times for the
configurations {R1,R2}, {R1,T2}, {T1,R2}, and {T1,T2} to generate their
computational latencies.  And this step needs to be done only once and can
be done in advance."  :class:`CostModel.combo_cost` is that compilation —
it depends only on *which tables are read remotely*, never on timestamps,
and results are memoised.

The cost of a combo decomposes the query's **base work** (calibrated from
the mini engine's planner estimate when the query has a logical definition,
or from explicit/row-count figures otherwise) across the tables it reads:

* work attributed to remote tables runs at the remote sites, grouped per
  site (legs run in parallel), at ``remote_throughput``, plus shipping a
  fraction of those tables' bytes;
* work attributed to local replicas plus per-remote-site assembly runs at
  the local federation server at ``local_throughput``;
* results are transmitted back over the network model.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.engine.planner import Database, Planner
from repro.errors import ConfigError, PlanError
from repro.federation.catalog import Catalog
from repro.federation.network import NetworkModel

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.query import DSSQuery

__all__ = ["ComboCost", "CostParameters", "CostModel", "StaticCostProvider"]

#: Work units per row for queries with neither explicit work nor a logical
#: definition (matches repro.workload.generator.WORK_PER_ROW).
_FALLBACK_WORK_PER_ROW = 1.0


@dataclass(frozen=True)
class ComboCost:
    """Compiled cost of evaluating one query under one table-location combo.

    Attributes
    ----------
    site_legs:
        Remote work, ``(site_id, minutes)`` pairs; legs run in parallel.
    local_minutes:
        Work at the local federation server (replica scans + assembly).
    transmission:
        Result transmission back to the user, charged after processing.
    """

    site_legs: tuple[tuple[int, float], ...]
    local_minutes: float
    transmission: float

    def __post_init__(self) -> None:
        if self.local_minutes < 0 or self.transmission < 0:
            raise ConfigError("combo cost components must be >= 0")
        if any(minutes < 0 for _site, minutes in self.site_legs):
            raise ConfigError("combo leg minutes must be >= 0")

    @property
    def processing(self) -> float:
        """Wall-clock processing minutes assuming no contention."""
        longest_leg = max((minutes for _s, minutes in self.site_legs), default=0.0)
        return longest_leg + self.local_minutes

    @property
    def total(self) -> float:
        """Processing plus transmission."""
        return self.processing + self.transmission

    @property
    def remote_sites(self) -> tuple[int, ...]:
        """Distinct remote sites involved, sorted."""
        return tuple(sorted({site for site, _m in self.site_legs}))

    def leg_minutes(self, site: int) -> float:
        """Remote minutes at one site (0.0 if uninvolved)."""
        for leg_site, minutes in self.site_legs:
            if leg_site == site:
                return minutes
        return 0.0


@dataclass(frozen=True)
class CostParameters:
    """Calibration constants of the analytic cost model.

    Defaults put a mid-sized TPC-H query (≈8–12k work units) at roughly the
    paper's Figure 4 regime: ~2 minutes when answered fully from replicas
    and ~2 extra minutes per table that must be read remotely.
    """

    local_throughput: float = 5_000.0  # work units / minute at the DSS server
    remote_throughput: float = 1_250.0  # work units / minute at remote servers
    result_bytes: float = 2_000_000.0  # report size shipped to the user
    ship_fraction: float = 0.05  # fraction of a remote table's bytes shipped
    assembly_per_site: float = 0.2  # local minutes per involved remote site
    min_processing: float = 0.05  # floor, avoids zero-latency plans

    def __post_init__(self) -> None:
        if self.local_throughput <= 0 or self.remote_throughput <= 0:
            raise ConfigError("throughputs must be > 0")
        if not 0.0 <= self.ship_fraction <= 1.0:
            raise ConfigError("ship_fraction must be in [0, 1]")
        if self.result_bytes < 0 or self.assembly_per_site < 0:
            raise ConfigError("result_bytes/assembly_per_site must be >= 0")
        if self.min_processing < 0:
            raise ConfigError("min_processing must be >= 0")


class CostModel:
    """Compiles (query, remote-table-set) combos into :class:`ComboCost`."""

    def __init__(
        self,
        catalog: Catalog,
        network: NetworkModel | None = None,
        params: CostParameters | None = None,
        engine_db: Database | None = None,
    ) -> None:
        self.catalog = catalog
        self.network = network or NetworkModel()
        self.params = params or CostParameters()
        self._planner = Planner(engine_db) if engine_db is not None else None
        # Keyed on the query object (identity hash) — query ids are only
        # unique within one workload, but one cost model may serve many.
        self._base_work_cache: dict["DSSQuery", float] = {}
        self._combo_cache: dict[tuple["DSSQuery", frozenset[str]], ComboCost] = {}

    # -- base work calibration -------------------------------------------------

    def base_work(self, query: "DSSQuery") -> float:
        """Total work units to evaluate ``query`` (location-independent)."""
        cached = self._base_work_cache.get(query)
        if cached is not None:
            return cached
        if query.base_work is not None:
            work = query.base_work
        elif query.logical is not None and self._planner is not None:
            work = self._planner.estimate(query.logical).work_units
        else:
            work = _FALLBACK_WORK_PER_ROW * sum(
                self.catalog.table(name).row_count for name in query.tables
            )
        work = max(work, 1.0)
        self._base_work_cache[query] = work
        return work

    # -- combo compilation -------------------------------------------------------

    def combo_cost(self, query: "DSSQuery", remote_tables: frozenset[str]) -> ComboCost:
        """Compiled cost when exactly ``remote_tables`` are read remotely.

        Every remote table must be one of the query's tables; tables not in
        ``remote_tables`` are read from local replicas.
        """
        key = (query, remote_tables)
        cached = self._combo_cache.get(key)
        if cached is not None:
            return cached
        unknown = remote_tables - set(query.tables)
        if unknown:
            raise PlanError(
                f"combo for {query.name!r} names tables the query does not "
                f"read: {sorted(unknown)}"
            )
        cost = self._compile(query, remote_tables)
        self._combo_cache[key] = cost
        return cost

    def _work_shares(self, query: "DSSQuery") -> dict[str, float]:
        """Split the base work across tables, proportional to row counts."""
        work = self.base_work(query)
        rows = {name: self.catalog.table(name).row_count for name in query.tables}
        total_rows = sum(rows.values())
        if total_rows <= 0:
            share = work / len(query.tables)
            return {name: share for name in query.tables}
        return {name: work * rows[name] / total_rows for name in query.tables}

    def _compile(self, query: "DSSQuery", remote_tables: frozenset[str]) -> ComboCost:
        params = self.params
        shares = self._work_shares(query)

        per_site_work: dict[int, float] = {}
        per_site_ship: dict[int, float] = {}
        local_work = 0.0
        for name, share in shares.items():
            if name in remote_tables:
                table = self.catalog.table(name)
                per_site_work[table.site] = per_site_work.get(table.site, 0.0) + share
                per_site_ship[table.site] = (
                    per_site_ship.get(table.site, 0.0)
                    + params.ship_fraction * table.size_bytes
                )
            else:
                local_work += share

        legs = []
        for site, site_work in sorted(per_site_work.items()):
            minutes = site_work / params.remote_throughput
            minutes += self.network.transfer_time(
                per_site_ship.get(site, 0.0), site=site
            )
            legs.append((site, minutes))

        local_minutes = local_work / params.local_throughput
        local_minutes += params.assembly_per_site * len(legs)
        local_minutes += self.network.coordination_time(len(legs))
        local_minutes = max(local_minutes, params.min_processing)

        transmission = (
            self.network.transfer_time(params.result_bytes)
            if params.result_bytes > 0
            else 0.0
        )
        return ComboCost(
            site_legs=tuple(legs),
            local_minutes=local_minutes,
            transmission=transmission,
        )


class StaticCostProvider:
    """Hand-specified combo costs, for worked examples and tests.

    The paper's Figure 4 walkthrough "assume[s] the computation time is 2 if
    the query evaluation only uses the replications and 4, 6, 8, and 10 if
    the query evaluation involves 1, 2, 3, and 4 base tables" — this class
    expresses exactly such assumptions.  Costs are a function of the number
    of remote tables (``by_remote_count``) with optional per-combo overrides
    (``overrides`` keyed by frozenset of table names).
    """

    def __init__(
        self,
        catalog: Catalog,
        by_remote_count: dict[int, float],
        overrides: dict[frozenset[str], float] | None = None,
        transmission: float = 0.0,
        remote_leg_fraction: float = 1.0,
    ) -> None:
        if not by_remote_count:
            raise ConfigError("by_remote_count must not be empty")
        if any(value < 0 for value in by_remote_count.values()):
            raise ConfigError("combo costs must be >= 0")
        if not 0.0 <= remote_leg_fraction <= 1.0:
            raise ConfigError("remote_leg_fraction must be in [0, 1]")
        self.catalog = catalog
        self.by_remote_count = dict(by_remote_count)
        self.overrides = dict(overrides or {})
        self.transmission = transmission
        self.remote_leg_fraction = remote_leg_fraction

    def combo_cost(self, query: "DSSQuery", remote_tables: frozenset[str]) -> ComboCost:
        """Combo cost per the hand-specified table."""
        unknown = remote_tables - set(query.tables)
        if unknown:
            raise PlanError(
                f"combo for {query.name!r} names tables the query does not "
                f"read: {sorted(unknown)}"
            )
        total = self.overrides.get(remote_tables)
        if total is None:
            count = len(remote_tables)
            if count not in self.by_remote_count:
                raise PlanError(
                    f"no cost specified for {count} remote tables "
                    f"(query {query.name!r})"
                )
            total = self.by_remote_count[count]
        if not remote_tables:
            return ComboCost((), total, self.transmission)
        # Attribute a fraction of the time to one representative remote leg
        # per involved site so executors still exercise remote resources.
        sites = sorted({self.catalog.table(name).site for name in remote_tables})
        remote_minutes = total * self.remote_leg_fraction
        per_leg = remote_minutes  # legs are parallel: each takes the full span
        legs = tuple((site, per_leg) for site in sites)
        return ComboCost(legs, total - remote_minutes, self.transmission)
