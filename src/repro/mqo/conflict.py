"""Conflict detection and workload formation (paper Section 3.2, step 1).

"For each query, we perform an query plan selection task as described
earlier and derive a range along the time axis that the query may run.  If
the ranges of more than two queries are overlapped, we group them into a
workload for the next step."

A query's *execution range* spans from its arrival to the completion of its
slowest candidate plan; queries whose ranges overlap form connected
components, each optimized as one workload.

Ranges use **half-open ``[start, end)`` semantics**: a range ends the
instant its slowest plan completes, and a query arriving at exactly that
instant cannot contend with it — the server is already free.  Two ranges
touching at a single point therefore do *not* conflict and stay in
separate workloads.

Two group-formation paths exist and must agree bit-for-bit:

* :func:`conflict_groups` — the from-scratch sweep line, used by the batch
  scheduler (one workload, one pass) and as the oracle.
* :class:`IncrementalConflictGroups` — an interval structure the online
  scheduler maintains across windows, admitting and retiring one range at
  a time.  Admitting a range merges every cluster it overlaps; retiring
  one re-sweeps only its own cluster (which may split).  :meth:`groups`
  returns exactly what the sweep line would return on the same range set —
  same groups, same group order, same member order — so the per-window GA
  seeds (which depend on group *index*) are unchanged
  (``tests/test_mqo_conflict_incremental.py`` property-tests the
  equivalence against the sweep and a brute-force union-find oracle).
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass

from repro.errors import OptimizationError
from repro.mqo.evaluator import WorkloadEvaluator

__all__ = [
    "ExecutionRange",
    "execution_ranges",
    "conflict_groups",
    "IncrementalConflictGroups",
]


@dataclass(frozen=True)
class ExecutionRange:
    """The half-open time range ``[start, end)`` one query may occupy."""

    query_id: int
    start: float
    end: float

    def overlaps(self, other: "ExecutionRange") -> bool:
        """Whether two ranges conflict (the interval-graph edge relation).

        Half-open semantics: ranges that merely touch at one instant
        (``self.end == other.start``) do not overlap.  For positive-length
        ranges this is exactly "the intersection has positive length"; a
        zero-length range ``[x, x)`` conflicts with ranges *strictly*
        straddling ``x`` (its instant is busy) but not with ones starting
        or ending exactly there.
        """
        return self.start < other.end and other.start < self.end

    @property
    def sort_key(self) -> tuple[float, float, int]:
        """The sweep line's global ordering key."""
        return (self.start, self.end, self.query_id)


def execution_ranges(
    evaluator: WorkloadEvaluator,
    query_ids: list[int] | None = None,
) -> list[ExecutionRange]:
    """Derive each query's candidate execution range from its plan set.

    ``query_ids`` restricts the ranges to a subset of the workload (the
    online scheduler re-groups only not-yet-started queries); ``None``
    covers the whole workload.  Ranges are served from the evaluator's
    per-query cache (:meth:`WorkloadEvaluator.range_of`): candidate plan
    sets are immutable per query, so a range is derived exactly once.
    """
    if query_ids is None:
        ids = [query.query_id for query in evaluator.workload.queries]
    else:
        ids = list(query_ids)
    ranges = []
    for qid in ids:
        start, end = evaluator.range_of(qid)
        ranges.append(ExecutionRange(qid, start, end))
    return ranges


def conflict_groups(ranges: list[ExecutionRange]) -> list[list[int]]:
    """Connected components of the range-overlap graph (sweep line).

    Returns groups of query ids; singleton groups are queries that never
    contend and can be planned individually.  Consistent with
    :meth:`ExecutionRange.overlaps`, a range starting exactly where the
    previous group ends opens a *new* group (half-open semantics).

    Groups come out in sweep order — by their first member's
    ``(start, end, query_id)`` key, members in that same key order — which
    is what :meth:`IncrementalConflictGroups.groups` reproduces.
    """
    ordered = sorted(ranges, key=lambda r: (r.start, r.end, r.query_id))
    groups: list[list[int]] = []
    current: list[int] = []
    current_end = float("-inf")
    for rng in ordered:
        if current and rng.start < current_end:
            current.append(rng.query_id)
            current_end = max(current_end, rng.end)
        else:
            if current:
                groups.append(current)
            current = [rng.query_id]
            current_end = rng.end
    if current:
        groups.append(current)
    return groups


class _Cluster:
    """One connected component: a merged span plus its member ranges.

    ``members`` is kept sorted by the sweep key ``(start, end, query_id)``
    — within one component that is exactly the order the sweep line visits
    (and therefore emits) them in.
    """

    __slots__ = ("start", "end", "members")

    def __init__(self, members: list[ExecutionRange]) -> None:
        self.members = members
        self.start = members[0].start
        self.end = max(r.end for r in members)


class IncrementalConflictGroups:
    """Conflict groups maintained one admit/retire at a time.

    Positive-length member ranges live in disjoint clusters kept sorted by
    span start (two clusters may *touch* at an endpoint — half-open ranges
    that meet at one instant do not conflict).  A zero-length range
    ``[x, x)`` conflicts exactly with ranges strictly straddling ``x``
    (:meth:`ExecutionRange.overlaps`), so it never bridges, extends or
    splits a cluster; points are tracked separately and resolved only when
    :meth:`groups` materializes its answer — into the cluster whose span
    strictly contains the point (a cluster's coverage is gap-free, so
    strict containment is equivalent to the sweep's chaining rule), or
    into a singleton group otherwise.

    Complexity: :meth:`add` is ``O(log k + m)`` where ``k`` is the cluster
    count and ``m`` the membership of the clusters being merged;
    :meth:`remove` is ``O(log k + c)`` where ``c`` is the retired range's
    cluster size — against the sweep line's ``O(n log n)`` full recompute
    per window.
    """

    def __init__(self) -> None:
        self._ranges: dict[int, ExecutionRange] = {}
        self._clusters: list[_Cluster] = []
        self._starts: list[float] = []   # parallel: cluster span starts
        self._ends: list[float] = []     # parallel: cluster span ends
        self._points: dict[int, ExecutionRange] = {}  # zero-length ranges

    def __len__(self) -> int:
        return len(self._ranges)

    def __contains__(self, query_id: int) -> bool:
        return query_id in self._ranges

    def add(self, rng: ExecutionRange) -> None:
        """Admit one range, merging every cluster it overlaps."""
        if rng.query_id in self._ranges:
            raise OptimizationError(
                f"query {rng.query_id} already has an execution range"
            )
        if rng.end < rng.start:
            raise OptimizationError(
                f"execution range ends before it starts: {rng}"
            )
        self._ranges[rng.query_id] = rng
        if rng.start == rng.end:
            self._points[rng.query_id] = rng
            return
        # Clusters are disjoint and sorted, so both span arrays are sorted
        # and the clusters overlapping [start, end) form one contiguous
        # run: those whose end > rng.start and whose start < rng.end.
        lo = bisect_right(self._ends, rng.start)
        hi = bisect_left(self._starts, rng.end)
        if lo == hi:  # overlaps nothing: a fresh singleton cluster
            cluster = _Cluster([rng])
            self._clusters.insert(lo, cluster)
            self._starts.insert(lo, cluster.start)
            self._ends.insert(lo, cluster.end)
            return
        # Merge clusters[lo:hi] with the new range.  Their member lists
        # concatenate already sorted (each cluster's members start before
        # the next cluster's span does); the new range is insorted.
        members: list[ExecutionRange] = []
        for cluster in self._clusters[lo:hi]:
            members.extend(cluster.members)
        insort(members, rng, key=lambda r: (r.start, r.end, r.query_id))
        merged = _Cluster(members)
        self._clusters[lo:hi] = [merged]
        self._starts[lo:hi] = [merged.start]
        self._ends[lo:hi] = [merged.end]

    def remove(self, query_id: int) -> None:
        """Retire one range, re-sweeping (and possibly splitting) its cluster."""
        rng = self._ranges.pop(query_id, None)
        if rng is None:
            raise OptimizationError(
                f"query {query_id} has no execution range to retire"
            )
        if rng.start == rng.end:
            del self._points[query_id]
            return
        # The owning cluster is the one whose span starts latest at or
        # before rng.start (members start within their cluster's span, and
        # strictly before the next cluster's).
        index = bisect_right(self._starts, rng.start) - 1
        cluster = self._clusters[index]
        position = bisect_left(
            cluster.members, (rng.start, rng.end, rng.query_id),
            key=lambda r: (r.start, r.end, r.query_id),
        )
        del cluster.members[position]
        if not cluster.members:
            del self._clusters[index]
            del self._starts[index]
            del self._ends[index]
            return
        # Local sweep over the surviving members: the component may split.
        replacements: list[_Cluster] = []
        current: list[ExecutionRange] = []
        current_end = float("-inf")
        for member in cluster.members:
            if current and member.start < current_end:
                current.append(member)
                current_end = max(current_end, member.end)
            else:
                if current:
                    replacements.append(_Cluster(current))
                current = [member]
                current_end = member.end
        replacements.append(_Cluster(current))
        self._clusters[index : index + 1] = replacements
        self._starts[index : index + 1] = [c.start for c in replacements]
        self._ends[index : index + 1] = [c.end for c in replacements]

    def groups(self) -> list[list[int]]:
        """Current groups, bit-equal to the sweep line on the same ranges.

        Group order is the sweep's: by the first member's
        ``(start, end, query_id)`` key.  Zero-length points resolve here —
        captured by the cluster strictly containing them (they can never
        be a cluster's first member), singletons otherwise.
        """
        captured: dict[int, list[ExecutionRange]] = {}
        singles: list[ExecutionRange] = []
        for rng in self._points.values():
            index = bisect_right(self._starts, rng.start) - 1
            if (
                index >= 0
                and self._starts[index] < rng.start < self._ends[index]
            ):
                captured.setdefault(index, []).append(rng)
            else:
                singles.append(rng)
        parts: list[tuple[tuple[float, float, int], list[int]]] = []
        for index, cluster in enumerate(self._clusters):
            members = cluster.members
            points = captured.get(index)
            if points:
                members = sorted(
                    members + points, key=lambda r: r.sort_key
                )
            parts.append(
                (members[0].sort_key, [r.query_id for r in members])
            )
        parts.extend((rng.sort_key, [rng.query_id]) for rng in singles)
        parts.sort(key=lambda item: item[0])
        return [group for _, group in parts]
