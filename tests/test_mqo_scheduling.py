"""Unit tests: conflict detection, workload evaluation and MQO scheduling."""

from __future__ import annotations

import pytest

from repro.core.aging import AgingPolicy
from repro.core.value import DiscountRates
from repro.errors import OptimizationError
from repro.federation.catalog import Catalog, FixedSyncSchedule, TableDef
from repro.federation.costmodel import CostModel, CostParameters
from repro.mqo.conflict import ExecutionRange, conflict_groups, execution_ranges
from repro.mqo.evaluator import WorkloadEvaluator
from repro.mqo.ga import GAConfig
from repro.mqo.scheduler import WorkloadScheduler
from repro.workload.query import DSSQuery, Workload


def build_catalog(num_tables=6, num_sites=3) -> Catalog:
    catalog = Catalog()
    for index in range(num_tables):
        name = f"t{index}"
        catalog.add_table(
            TableDef(name, site=index % num_sites, row_count=3_000)
        )
        catalog.add_replica(
            name,
            FixedSyncSchedule(
                [1.0 + index * 0.5 + k * 6.0 for k in range(30)],
                tail_period=6.0,
            ),
        )
    return catalog


def build_stack(rates=None, params=None):
    catalog = build_catalog()
    cost_model = CostModel(catalog, params=params or CostParameters())
    rates = rates or DiscountRates.symmetric(0.1)
    scheduler = WorkloadScheduler(
        catalog, cost_model, rates, ga_config=GAConfig(generations=15), seed=1
    )
    return catalog, cost_model, rates, scheduler


def burst_workload(count=4, gap=0.2, tables_per_query=3) -> Workload:
    workload = Workload()
    for index in range(count):
        tables = tuple(f"t{(index + j) % 6}" for j in range(tables_per_query))
        workload.add(
            DSSQuery(
                query_id=index + 1, name=f"q{index + 1}", tables=tables,
                base_work=8_000.0,
            ),
            arrival=1.0 + gap * index,
        )
    return workload


def spread_workload(count=3, gap=500.0) -> Workload:
    workload = Workload()
    for index in range(count):
        workload.add(
            DSSQuery(
                query_id=index + 1, name=f"q{index + 1}",
                tables=(f"t{index % 6}",), base_work=2_000.0,
            ),
            arrival=1.0 + gap * index,
        )
    return workload


class TestExecutionRanges:
    def test_overlap_detection(self):
        a = ExecutionRange(1, 0.0, 10.0)
        b = ExecutionRange(2, 5.0, 15.0)
        c = ExecutionRange(3, 11.0, 20.0)
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_touching_ranges_do_not_overlap(self):
        # Half-open [start, end) semantics: a range ending at t and a
        # range starting at t share no positive-length interval.  The old
        # closed comparison (<=) treated them as conflicting.
        a = ExecutionRange(1, 0.0, 5.0)
        b = ExecutionRange(2, 5.0, 9.0)
        assert not a.overlaps(b)
        assert not b.overlaps(a)

    def test_point_adjacent_ranges_overlap_when_interior_shared(self):
        a = ExecutionRange(1, 0.0, 5.0)
        b = ExecutionRange(2, 5.0 - 1e-9, 9.0)
        assert a.overlaps(b)

    def test_range_overlaps_itself(self):
        a = ExecutionRange(1, 2.0, 4.0)
        assert a.overlaps(a)

    def test_ranges_start_at_arrival(self):
        catalog, cost_model, rates, _sched = build_stack()
        workload = burst_workload()
        evaluator = WorkloadEvaluator(catalog, cost_model, rates, workload)
        for rng in execution_ranges(evaluator):
            assert rng.start == workload.arrival_of(rng.query_id)
            assert rng.end > rng.start


class TestConflictGroups:
    def test_burst_forms_one_group(self):
        catalog, cost_model, rates, _sched = build_stack()
        workload = burst_workload()
        evaluator = WorkloadEvaluator(catalog, cost_model, rates, workload)
        groups = conflict_groups(execution_ranges(evaluator))
        assert len(groups) == 1
        assert sorted(groups[0]) == [1, 2, 3, 4]

    def test_spread_queries_form_singletons(self):
        catalog, cost_model, rates, _sched = build_stack()
        workload = spread_workload()
        evaluator = WorkloadEvaluator(catalog, cost_model, rates, workload)
        groups = conflict_groups(execution_ranges(evaluator))
        assert all(len(group) == 1 for group in groups)
        assert len(groups) == 3

    def test_sweep_merges_chains(self):
        ranges = [
            ExecutionRange(1, 0.0, 5.0),
            ExecutionRange(2, 4.0, 9.0),
            ExecutionRange(3, 8.0, 12.0),  # overlaps 2, not 1 -> same chain
            ExecutionRange(4, 50.0, 55.0),
        ]
        groups = conflict_groups(ranges)
        assert sorted(map(sorted, groups)) == [[1, 2, 3], [4]]

    def test_touching_ranges_open_new_group(self):
        # Consistent with half-open overlaps: [0,5) and [5,9) never
        # contend, so the sweep must not merge them into one workload.
        ranges = [
            ExecutionRange(1, 0.0, 5.0),
            ExecutionRange(2, 5.0, 9.0),
            ExecutionRange(3, 9.0, 12.0),
        ]
        groups = conflict_groups(ranges)
        assert sorted(map(sorted, groups)) == [[1], [2], [3]]


class TestWorkloadEvaluator:
    def test_permutation_must_cover_workload(self):
        catalog, cost_model, rates, _sched = build_stack()
        workload = burst_workload()
        evaluator = WorkloadEvaluator(catalog, cost_model, rates, workload)
        with pytest.raises(OptimizationError):
            evaluator.evaluate([1, 2])
        with pytest.raises(OptimizationError):
            evaluator.evaluate([1, 2, 3, 3])

    def test_contention_shows_up_in_later_queries(self):
        catalog, cost_model, rates, _sched = build_stack()
        workload = burst_workload()
        evaluator = WorkloadEvaluator(catalog, cost_model, rates, workload)
        result = evaluator.evaluate([1, 2, 3, 4])
        begins = [a.begin for a in result.assignments]
        assert begins == sorted(begins)
        assert result.assignments[-1].begin > workload.arrival_of(4)

    def test_candidates_sorted_by_estimated_iv(self):
        catalog, cost_model, rates, _sched = build_stack()
        workload = burst_workload()
        evaluator = WorkloadEvaluator(catalog, cost_model, rates, workload)
        plans = evaluator.candidates(workload.query(1))
        values = [plan.information_value for plan in plans]
        assert values == sorted(values, reverse=True)

    def test_total_is_sum_of_assignments(self):
        catalog, cost_model, rates, _sched = build_stack()
        workload = burst_workload()
        evaluator = WorkloadEvaluator(catalog, cost_model, rates, workload)
        result = evaluator.evaluate([4, 3, 2, 1])
        assert result.total_information_value == pytest.approx(
            sum(a.information_value for a in result.assignments)
        )
        assert result.mean_information_value == pytest.approx(
            result.total_information_value / 4
        )

    def test_evaluation_is_deterministic(self):
        catalog, cost_model, rates, _sched = build_stack()
        workload = burst_workload()
        evaluator = WorkloadEvaluator(catalog, cost_model, rates, workload)
        first = evaluator.evaluate([2, 1, 4, 3]).total_information_value
        second = evaluator.evaluate([2, 1, 4, 3]).total_information_value
        assert first == second


class TestWorkloadScheduler:
    def test_mqo_at_least_matches_fifo(self):
        _catalog, _cm, _rates, scheduler = build_stack(
            rates=DiscountRates.symmetric(0.15)
        )
        workload = burst_workload(count=5)
        mqo = scheduler.schedule(workload)
        fifo = scheduler.fifo(workload)
        assert (
            mqo.total_information_value
            >= fifo.total_information_value - 1e-9
        )

    def test_mqo_improves_under_heavy_contention(self):
        _catalog, _cm, _rates, scheduler = build_stack(
            rates=DiscountRates.symmetric(0.15),
            params=CostParameters(
                local_throughput=1_000.0, remote_throughput=400.0
            ),
        )
        workload = burst_workload(count=6, gap=0.1)
        mqo = scheduler.schedule(workload)
        fifo = scheduler.fifo(workload)
        assert mqo.total_information_value > fifo.total_information_value

    def test_spread_workload_needs_no_ga(self):
        _catalog, _cm, _rates, scheduler = build_stack()
        decision = scheduler.schedule(spread_workload())
        assert decision.ga_results == []
        assert all(len(group) == 1 for group in decision.groups)

    def test_permutation_covers_all_queries(self):
        _catalog, _cm, _rates, scheduler = build_stack()
        workload = burst_workload(count=5)
        decision = scheduler.schedule(workload)
        assert sorted(decision.permutation) == [1, 2, 3, 4, 5]

    def test_empty_workload_rejected(self):
        _catalog, _cm, _rates, scheduler = build_stack()
        with pytest.raises(OptimizationError):
            scheduler.schedule(Workload())
        with pytest.raises(OptimizationError):
            scheduler.fifo(Workload())
        with pytest.raises(OptimizationError):
            scheduler.greedy_dispatch(Workload())

    def test_greedy_dispatch_schedules_everyone_once(self):
        _catalog, _cm, _rates, scheduler = build_stack()
        workload = burst_workload(count=5)
        result = scheduler.greedy_dispatch(workload)
        names = sorted(a.query.name for a in result.assignments)
        assert names == [f"q{i}" for i in range(1, 6)]

    def test_aging_must_outpace_discounts(self):
        _catalog, _cm, _rates, scheduler = build_stack(
            rates=DiscountRates.symmetric(0.3)
        )
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            scheduler.greedy_dispatch(
                burst_workload(), aging=AgingPolicy(beta=0.1)
            )

    def test_dispatch_clock_waits_for_transmission(self):
        """Regression: the dispatcher's clock must advance to ``completed``.

        The old code advanced it to ``begin + processing``, deciding the
        next dispatch while the previous query's result transmission was
        still in flight — so a high-value query arriving during the
        transmission window never got to compete.  With a slow network
        (2 MB result over 200 kB/min ≈ 10 minutes of transmission), q1
        occupies [0, ~4] processing + ~10 transmission; q2 (BV 1) arrives
        at 5 and q3 (BV 3) at 8, both inside the in-flight window.  The
        fixed clock sees both at q1's completion and dispatches q3 first;
        the buggy clock dispatched q2 alone at t=5.
        """
        from repro.federation.network import NetworkModel

        catalog = build_catalog()
        cost_model = CostModel(
            catalog, network=NetworkModel(bandwidth=200_000.0)
        )
        rates = DiscountRates.symmetric(0.05)
        scheduler = WorkloadScheduler(
            catalog, cost_model, rates, ga_config=GAConfig(generations=5),
            seed=1,
        )
        workload = Workload()
        workload.add(
            DSSQuery(query_id=1, name="q1", tables=("t0",), base_work=20_000.0),
            arrival=0.0,
        )
        workload.add(
            DSSQuery(query_id=2, name="q2", tables=("t1",), base_work=2_000.0,
                     business_value=1.0),
            arrival=5.0,
        )
        workload.add(
            DSSQuery(query_id=3, name="q3", tables=("t2",), base_work=2_000.0,
                     business_value=3.0),
            arrival=8.0,
        )
        result = scheduler.greedy_dispatch(workload)
        first = result.assignments[0]
        assert first.completed - first.begin - first.plan.cost.processing > 5.0
        assert [a.query.query_id for a in result.assignments] == [1, 3, 2]

    def test_aging_rescues_starving_query(self):
        """One big query + stream of small ones: aging bounds its wait."""
        catalog = build_catalog()
        cost_model = CostModel(
            catalog,
            params=CostParameters(
                local_throughput=2_000.0, remote_throughput=800.0
            ),
        )
        rates = DiscountRates.symmetric(0.15)
        scheduler = WorkloadScheduler(catalog, cost_model, rates, seed=2)
        workload = Workload()
        workload.add(
            DSSQuery(query_id=1, name="big", tables=tuple(f"t{i}" for i in range(6)),
                     base_work=30_000.0),
            arrival=0.5,
        )
        for index in range(20):
            workload.add(
                DSSQuery(
                    query_id=index + 2, name=f"small{index}",
                    tables=(f"t{index % 6}",), base_work=1_500.0,
                ),
                arrival=0.5 + 0.5 * index,
            )

        def big_wait(result):
            big = next(a for a in result.assignments if a.query.name == "big")
            return big.begin - big.arrival

        plain = scheduler.greedy_dispatch(workload, aging=None)
        aged = scheduler.greedy_dispatch(
            workload, aging=AgingPolicy(beta=0.4)
        )
        assert big_wait(aged) < big_wait(plain)
