"""Unit tests: the simulation tracer and its system integration."""

from __future__ import annotations

import pytest

from repro.core.value import DiscountRates
from repro.errors import SimulationError
from repro.sim.trace import TraceRecord, Tracer


class TestTracer:
    def make(self, capacity=None):
        clock = [0.0]
        tracer = Tracer(lambda: clock[0], capacity=capacity)
        return clock, tracer

    def test_emit_records_time_and_detail(self):
        clock, tracer = self.make()
        clock[0] = 3.5
        tracer.emit("submit", "Q1", priority=2)
        record = tracer.records[0]
        assert record.time == 3.5
        assert record.kind == "submit"
        assert record.subject == "Q1"
        assert record.detail == {"priority": 2}

    def test_disabled_tracer_records_nothing(self):
        _clock, tracer = self.make()
        tracer.enabled = False
        tracer.emit("x", "y")
        assert len(tracer) == 0

    def test_capacity_evicts_oldest(self):
        clock, tracer = self.make(capacity=2)
        for index in range(4):
            clock[0] = float(index)
            tracer.emit("tick", str(index))
        assert len(tracer) == 2
        assert tracer.dropped == 2
        assert [record.subject for record in tracer.records] == ["2", "3"]

    def test_capacity_validation(self):
        with pytest.raises(SimulationError):
            Tracer(lambda: 0.0, capacity=0)

    def test_filter_by_kind_subject_and_window(self):
        clock, tracer = self.make()
        for time, kind, subject in (
            (1.0, "submit", "Q1"),
            (2.0, "complete", "Q1"),
            (3.0, "submit", "Q2"),
        ):
            clock[0] = time
            tracer.emit(kind, subject)
        assert len(list(tracer.filter(kind="submit"))) == 2
        assert len(list(tracer.filter(subject="Q1"))) == 2
        assert len(list(tracer.filter(since=2.0, until=3.0))) == 2
        assert len(list(tracer.filter(kind="submit", subject="Q2"))) == 1

    def test_timeline_renders_lines(self):
        clock, tracer = self.make()
        clock[0] = 1.25
        tracer.emit("sync", "orders", at=1.25)
        text = tracer.timeline()
        assert "sync" in text
        assert "orders" in text
        assert "at=1.25" in text

    def test_timeline_notes_drops(self):
        clock, tracer = self.make(capacity=1)
        tracer.emit("a", "1")
        tracer.emit("b", "2")
        assert "dropped" in tracer.timeline()

    def test_clear(self):
        _clock, tracer = self.make()
        tracer.emit("x", "y")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_emit_rejects_time_going_backwards(self):
        clock, tracer = self.make()
        clock[0] = 5.0
        tracer.emit("tick", "a")
        clock[0] = 4.0
        with pytest.raises(SimulationError):
            tracer.emit("tick", "b")
        # The offending record was not appended.
        assert [record.subject for record in tracer.records] == ["a"]

    def test_emit_allows_equal_times(self):
        clock, tracer = self.make()
        clock[0] = 2.0
        tracer.emit("tick", "a")
        tracer.emit("tick", "b")
        assert len(tracer) == 2

    def test_clear_resets_the_time_guard(self):
        clock, tracer = self.make()
        clock[0] = 9.0
        tracer.emit("tick", "a")
        tracer.clear()
        clock[0] = 1.0
        tracer.emit("tick", "b")  # fine after clear
        assert len(tracer) == 1

    def test_capacity_drops_oldest_never_newest(self):
        clock, tracer = self.make(capacity=3)
        for index in range(10):
            clock[0] = float(index)
            tracer.emit("tick", str(index))
        assert [record.subject for record in tracer.records] == ["7", "8", "9"]
        assert tracer.dropped == 7
        # The newest record is always retained.
        clock[0] = 10.0
        tracer.emit("tick", "10")
        assert tracer.records[-1].subject == "10"
        assert len(tracer) == 3

    def test_record_format(self):
        record = TraceRecord(2.0, "plan", "Q3", {"remote": "a,b"})
        text = record.format()
        assert "plan" in text
        assert "remote=a,b" in text


class TestSubscribe:
    def make(self, capacity=None):
        clock = [0.0]
        tracer = Tracer(lambda: clock[0], capacity=capacity)
        return clock, tracer

    def test_subscribers_see_every_record_in_order(self):
        clock, tracer = self.make()
        seen = []
        tracer.subscribe(seen.append)
        for index in range(4):
            clock[0] = float(index)
            tracer.emit("tick", str(index))
        assert [record.subject for record in seen] == ["0", "1", "2", "3"]
        assert seen == tracer.records

    def test_subscribers_see_records_a_bounded_tracer_evicts(self):
        clock, tracer = self.make(capacity=2)
        seen = []
        tracer.subscribe(seen.append)
        for index in range(6):
            clock[0] = float(index)
            tracer.emit("tick", str(index))
        # The retained window lost the prefix; the live feed did not.
        assert len(tracer) == 2
        assert tracer.dropped == 4
        assert [record.subject for record in seen] == [
            "0", "1", "2", "3", "4", "5",
        ]

    def test_multiple_subscribers_fire_in_attach_order(self):
        _clock, tracer = self.make()
        order = []
        tracer.subscribe(lambda record: order.append("first"))
        tracer.subscribe(lambda record: order.append("second"))
        tracer.emit("tick", "a")
        assert order == ["first", "second"]

    def test_disabled_tracer_does_not_notify(self):
        _clock, tracer = self.make()
        seen = []
        tracer.subscribe(seen.append)
        tracer.enabled = False
        tracer.emit("tick", "a")
        assert seen == []

    def test_subscriber_may_emit_followup_records(self):
        # The SLO monitor emits alert events from inside a subscription;
        # the follow-up record must land after the triggering one.
        _clock, tracer = self.make()

        def alert_on_spike(record):
            if record.kind == "spike":
                tracer.emit("alert", record.subject)

        tracer.subscribe(alert_on_spike)
        tracer.emit("spike", "s1")
        assert [record.kind for record in tracer.records] == ["spike", "alert"]


class TestSystemTracing:
    def test_traced_system_records_lifecycle(self):
        from repro.baselines import ivqp_router
        from repro.federation.system import (
            SystemConfig,
            TableSpec,
            build_system,
        )
        from repro.workload.query import DSSQuery

        config = SystemConfig(
            tables=[
                TableSpec("a", site=0, row_count=1_000),
                TableSpec("b", site=1, row_count=2_000),
            ],
            replicated=["a"],
            sync_mode="periodic",
            sync_mean_interval=4.0,
            rates=DiscountRates(0.02, 0.02),
            trace=True,
            seed=2,
        )
        system = build_system(config, ivqp_router)
        system.submit(DSSQuery(query_id=1, name="q", tables=("a", "b")), at=9.0)
        system.run()

        tracer = system.tracer
        assert tracer is not None
        kinds = [record.kind for record in tracer.records]
        assert "submit" in kinds
        assert "plan" in kinds
        assert "complete" in kinds
        assert "sync" in kinds
        # Causal ordering for the query's own lifecycle: the full span
        # event stream, submission through audit ledger.
        q_kinds = [record.kind for record in tracer.filter(subject="q")]
        assert q_kinds[:3] == ["submit", "plan", "exec.start"]
        assert q_kinds[-3:] == ["local.done", "complete", "ledger"]
        assert "remote.done" in q_kinds and "local.granted" in q_kinds
        times = [record.time for record in tracer.filter(subject="q")]
        assert times == sorted(times)

    def test_untraced_system_has_no_tracer(self):
        from repro.baselines import federation_router
        from repro.federation.system import (
            SystemConfig,
            TableSpec,
            build_system,
        )

        config = SystemConfig(
            tables=[TableSpec("a", site=0, row_count=100)],
            replicated=[],
        )
        system = build_system(config, federation_router)
        assert system.tracer is None
