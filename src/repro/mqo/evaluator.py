"""Deterministic workload evaluation — the GA's fitness function.

Section 3.2: "An important GA component is the evaluation function.  Given
a particular chromosome representing one workload permutation, the function
deterministically calculates the information value of a given workload
execution order."

The evaluator replays a permutation analytically (no discrete-event run):
it tracks when each server (local DSS server and every remote site) becomes
free, and for each query — in permutation order — picks the candidate plan
with the best *realized* IV given those availabilities, then commits the
plan's resource usage.  Candidate plans per query are enumerated once and
cached (gather combos at the arrival instant and at scheduled sync points
within the scatter bound).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.core.enumeration import CostProvider, enumerate_plans
from repro.core.plan import QueryPlan, VersionKind
from repro.core.value import DiscountRates, information_value, max_tolerable_latency
from repro.errors import OptimizationError
from repro.federation.catalog import Catalog
from repro.federation.site import LOCAL_SITE_ID

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.query import DSSQuery, Workload

__all__ = ["Assignment", "EvaluationResult", "WorkloadEvaluator"]


@dataclass(frozen=True)
class Assignment:
    """One query's realized execution inside a schedule."""

    query: "DSSQuery"
    plan: QueryPlan
    arrival: float
    begin: float
    completed: float
    data_timestamp: float

    @property
    def computational_latency(self) -> float:
        """Realized CL under the schedule."""
        return self.completed - self.arrival

    @property
    def synchronization_latency(self) -> float:
        """Realized SL under the schedule."""
        return max(0.0, self.completed - self.data_timestamp)

    @property
    def information_value(self) -> float:
        """Realized IV under the schedule."""
        return information_value(
            self.query.business_value,
            self.computational_latency,
            self.synchronization_latency,
            self.plan.rates,
        )


@dataclass
class EvaluationResult:
    """Realized schedule for one permutation."""

    assignments: list[Assignment] = field(default_factory=list)

    @property
    def total_information_value(self) -> float:
        """Sum of realized IVs (the workload objective, Section 3.2)."""
        return sum(a.information_value for a in self.assignments)

    @property
    def mean_information_value(self) -> float:
        """Mean realized IV."""
        if not self.assignments:
            return 0.0
        return self.total_information_value / len(self.assignments)

    @property
    def max_wait(self) -> float:
        """Largest begin-after-arrival wait (starvation indicator)."""
        return max((a.begin - a.arrival for a in self.assignments), default=0.0)


class WorkloadEvaluator:
    """Scores execution orders of a workload deterministically."""

    def __init__(
        self,
        catalog: Catalog,
        cost_provider: CostProvider,
        default_rates: DiscountRates,
        workload: "Workload",
        max_candidates: int = 64,
    ) -> None:
        if max_candidates < 1:
            raise OptimizationError("max_candidates must be >= 1")
        self.catalog = catalog
        self.cost_provider = cost_provider
        self.default_rates = default_rates
        self.workload = workload
        self.max_candidates = max_candidates
        self._candidates: dict[int, list[QueryPlan]] = {}

    # -- candidate plans ---------------------------------------------------

    def rates_for(self, query: "DSSQuery") -> DiscountRates:
        """Per-query rates if set, otherwise the system default."""
        return query.rates if query.rates is not None else self.default_rates

    def candidates(self, query: "DSSQuery") -> list[QueryPlan]:
        """Cached candidate plans for one query (gather combos + delays)."""
        cached = self._candidates.get(query.query_id)
        if cached is not None:
            return cached
        arrival = self.workload.arrival_of(query.query_id)
        rates = self.rates_for(query)
        all_base_cost = self.cost_provider.combo_cost(
            query, frozenset(query.tables)
        )
        incumbent = information_value(
            query.business_value,
            all_base_cost.total,
            all_base_cost.total,
            rates,
        )
        tolerable = max_tolerable_latency(
            query.business_value, incumbent, rates.computational
        )
        horizon = arrival + min(tolerable, 24 * 60.0)  # cap lookahead at a day
        plans = enumerate_plans(
            query, self.catalog, self.cost_provider, rates,
            submitted_at=arrival, horizon=horizon, exhaustive=False,
        )
        plans.sort(key=lambda plan: plan.information_value, reverse=True)
        plans = plans[: self.max_candidates]
        self._candidates[query.query_id] = plans
        return plans

    # -- schedule replay ---------------------------------------------------------

    def _realize(
        self,
        plan: QueryPlan,
        arrival: float,
        free_at: dict[int, float],
    ) -> Assignment:
        involved = [LOCAL_SITE_ID, *plan.cost.remote_sites]
        begin = max(
            plan.start_time,
            arrival,
            *(free_at.get(site, 0.0) for site in involved),
        )
        completed = begin + plan.cost.processing + plan.cost.transmission
        freshness = []
        for version in plan.versions:
            if version.kind is VersionKind.BASE:
                freshness.append(begin)
            else:
                replica = self.catalog.replica(version.table)
                freshness.append(replica.freshness_at(begin))
        return Assignment(
            query=plan.query,
            plan=plan,
            arrival=arrival,
            begin=begin,
            completed=completed,
            data_timestamp=min(freshness),
        )

    def _commit(self, assignment: Assignment, free_at: dict[int, float]) -> None:
        busy_until = assignment.begin + assignment.plan.cost.processing
        free_at[LOCAL_SITE_ID] = max(free_at.get(LOCAL_SITE_ID, 0.0), busy_until)
        for site in assignment.plan.cost.remote_sites:
            leg_end = assignment.begin + assignment.plan.cost.leg_minutes(site)
            free_at[site] = max(free_at.get(site, 0.0), leg_end)

    def evaluate(self, permutation: list[int]) -> EvaluationResult:
        """Realize a permutation of query ids, greedily re-planning each.

        Queries run in the given order; each picks its IV-best candidate
        plan given current server availabilities, then occupies servers.
        """
        expected = {query.query_id for query in self.workload.queries}
        if set(permutation) != expected or len(permutation) != len(expected):
            raise OptimizationError(
                "permutation must contain each workload query id exactly once"
            )
        free_at: dict[int, float] = {}
        result = EvaluationResult()
        for query_id in permutation:
            query = self.workload.query(query_id)
            arrival = self.workload.arrival_of(query_id)
            best: Assignment | None = None
            for plan in self.candidates(query):
                assignment = self._realize(plan, arrival, free_at)
                if best is None or (
                    assignment.information_value > best.information_value
                ):
                    best = assignment
            if best is None:  # pragma: no cover - candidates never empty
                raise OptimizationError(f"no candidate plans for {query.name!r}")
            self._commit(best, free_at)
            result.assignments.append(best)
        return result

    def fitness(self, permutation: list[int]) -> float:
        """GA fitness: the permutation's total realized information value."""
        return self.evaluate(permutation).total_information_value
