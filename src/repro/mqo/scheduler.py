"""Workload scheduling: MQO via GA, plus FIFO and greedy baselines.

* :meth:`WorkloadScheduler.schedule` — the paper's MQO: form conflict
  groups, GA-optimize each group's execution order, realize the combined
  schedule.
* :meth:`WorkloadScheduler.fifo` — "without MQO": queries run in arrival
  order, each carrying the plan that is optimal *for it alone*; contention
  is then suffered, not planned for.
* :meth:`WorkloadScheduler.greedy_dispatch` — an event-driven dispatcher
  choosing, at each step, the waiting query with the highest priority;
  with an :class:`~repro.core.aging.AgingPolicy` this is the paper's
  starvation-prevention scheduler (Section 3.3).
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.core.aging import AgingPolicy
from repro.core.enumeration import CostProvider
from repro.core.value import DiscountRates
from repro.errors import OptimizationError
from repro.federation.catalog import Catalog
from repro.mqo.conflict import conflict_groups, execution_ranges
from repro.mqo.evaluator import (
    Assignment,
    EvaluationResult,
    EvaluatorStats,
    WorkloadEvaluator,
)
from repro.mqo.ga import GAConfig, GAResult, GeneticAlgorithm
from repro.obs import events

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.trace import Tracer
    from repro.workload.query import Workload

__all__ = ["ScheduleDecision", "WorkloadScheduler"]


@dataclass
class ScheduleDecision:
    """The MQO scheduler's output."""

    result: EvaluationResult
    permutation: list[int]
    groups: list[list[int]]
    ga_results: list[GAResult] = field(default_factory=list)
    evaluator_stats: EvaluatorStats | None = None

    @property
    def total_information_value(self) -> float:
        """Workload objective value."""
        return self.result.total_information_value

    @property
    def mean_information_value(self) -> float:
        """Mean per-query realized IV."""
        return self.result.mean_information_value


class WorkloadScheduler:
    """Multi-query optimization in the scheduling sense (Section 3.2)."""

    def __init__(
        self,
        catalog: Catalog,
        cost_provider: CostProvider,
        default_rates: DiscountRates,
        ga_config: GAConfig | None = None,
        seed: int = 0,
        max_candidates: int = 64,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.catalog = catalog
        self.cost_provider = cost_provider
        self.default_rates = default_rates
        self.ga_config = ga_config or GAConfig()
        self.seed = seed
        self.max_candidates = max_candidates
        self.tracer = tracer

    def _evaluator(self, workload: "Workload") -> WorkloadEvaluator:
        return WorkloadEvaluator(
            self.catalog,
            self.cost_provider,
            self.default_rates,
            workload,
            max_candidates=self.max_candidates,
        )

    # -- MQO ----------------------------------------------------------------

    def schedule(self, workload: "Workload") -> ScheduleDecision:
        """GA-optimized execution order maximizing total workload IV."""
        if len(workload) == 0:
            raise OptimizationError("cannot schedule an empty workload")
        evaluator = self._evaluator(workload)
        ranges = execution_ranges(evaluator)
        groups = conflict_groups(ranges)
        if self.tracer is not None:
            self.tracer.emit(
                events.MQO_GROUPS, "workload",
                groups=len(groups),
                sizes=[len(group) for group in groups],
            )

        arrival_order = [
            query.query_id for query in workload.sorted_by_arrival()
        ]
        group_orders: dict[int, list[int]] = {}
        ga_results: list[GAResult] = []
        for index, group in enumerate(groups):
            if len(group) < 2:
                group_orders[index] = list(group)
                continue
            group_set = set(group)
            seed_order = [qid for qid in arrival_order if qid in group_set]
            ga = GeneticAlgorithm(
                genes=group,
                fitness=evaluator.sequence_fitness,
                config=self.ga_config,
                seed=self.seed + index,
                evaluator_stats=evaluator.stats,
            )
            outcome = ga.run(seed_chromosomes=[seed_order])
            ga_results.append(outcome)
            group_orders[index] = outcome.best
            if self.tracer is not None:
                self.tracer.emit(
                    events.MQO_GA, f"group:{index}",
                    best_fitness=outcome.best_fitness,
                    generations=outcome.generations_run,
                    order=list(outcome.best),
                )

        # Groups are disjoint in time; realize them in start order.
        ordered_groups = sorted(
            range(len(groups)),
            key=lambda index: min(
                workload.arrival_of(qid) for qid in groups[index]
            ),
        )
        permutation: list[int] = []
        for index in ordered_groups:
            permutation.extend(group_orders[index])
        result = evaluator.evaluate(permutation)
        if self.tracer is not None:
            self.tracer.emit(
                events.MQO_ORDER, "workload",
                permutation=list(permutation),
                total_iv=result.total_information_value,
            )
        return ScheduleDecision(
            result=result,
            permutation=permutation,
            groups=groups,
            ga_results=ga_results,
            evaluator_stats=evaluator.stats,
        )

    # -- baselines ---------------------------------------------------------------

    def fifo(self, workload: "Workload") -> EvaluationResult:
        """Without MQO: arrival order, individually-optimal plans.

        Each query keeps the plan an isolated IVQP run would pick (its best
        candidate, which ignores other queries); contention then delays it.
        """
        if len(workload) == 0:
            raise OptimizationError("cannot schedule an empty workload")
        evaluator = self._evaluator(workload)
        free_at: dict[int, float] = {}
        result = EvaluationResult()
        for query in workload.sorted_by_arrival():
            arrival = workload.arrival_of(query.query_id)
            plan = evaluator.candidates(query)[0]  # isolated optimum
            assignment = evaluator._realize(plan, arrival, free_at)
            evaluator._commit(assignment, free_at)
            result.assignments.append(assignment)
        return result

    def greedy_dispatch(
        self,
        workload: "Workload",
        aging: AgingPolicy | None = None,
    ) -> EvaluationResult:
        """Event-driven dispatcher; with ``aging`` it prevents starvation.

        At each decision instant the dispatcher considers every *arrived*
        unscheduled query and runs the one with the highest priority —
        realized IV, plus the aging boost for its waiting time when an
        :class:`~repro.core.aging.AgingPolicy` is supplied (Section 3.3).
        """
        if len(workload) == 0:
            raise OptimizationError("cannot schedule an empty workload")
        if aging is not None:
            aging.validate_against(self.default_rates)
        evaluator = self._evaluator(workload)
        pending = {
            query.query_id: workload.arrival_of(query.query_id)
            for query in workload.queries
        }
        free_at: dict[int, float] = {}
        result = EvaluationResult()
        clock = min(pending.values())
        while pending:
            arrived = {qid: t for qid, t in pending.items() if t <= clock}
            if not arrived:
                clock = min(pending.values())
                continue
            best_qid = None
            best_assignment: Assignment | None = None
            best_priority = float("-inf")
            for qid, arrival in sorted(arrived.items()):
                query = workload.query(qid)
                chosen: Assignment | None = None
                for plan in evaluator.candidates(query):
                    assignment = evaluator._realize(plan, arrival, free_at)
                    if chosen is None or (
                        assignment.information_value > chosen.information_value
                    ):
                        chosen = assignment
                assert chosen is not None
                priority = chosen.information_value
                if aging is not None:
                    priority += aging.boost(
                        query.business_value, max(0.0, clock - arrival)
                    )
                if priority > best_priority:
                    best_priority = priority
                    best_qid = qid
                    best_assignment = chosen
            assert best_qid is not None and best_assignment is not None
            evaluator._commit(best_assignment, free_at)
            result.assignments.append(best_assignment)
            del pending[best_qid]
            # The next dispatch decision happens when the chosen query has
            # actually completed — remote legs and result transmission
            # included, not just local processing — so queries arriving
            # while results are still in flight compete with whatever is
            # waiting (this is what makes starvation possible, and what
            # aging then prevents).
            clock = max(clock, best_assignment.completed)
        return result
