"""Asset exposure during a market event — MQO and starvation prevention.

A bank's risk desk runs position/exposure reports over trading systems in
four regions.  When a market event hits, a burst of reports arrives at
once; the single DSS server and the regional servers saturate.  This
example contrasts three schedulers on the same burst:

* FIFO ("without MQO"): arrival order, each report individually optimized;
* MQO: the paper's GA-ordered workload schedule (Section 3.2);
* greedy dispatch with the aging boost (Section 3.3), which bounds the
  worst wait.

Run:  python examples/asset_exposure.py
"""

from __future__ import annotations

from repro import AgingPolicy, DSSQuery, DiscountRates, GAConfig, WorkloadScheduler
from repro.federation import Catalog, CostModel, CostParameters, TableDef
from repro.federation.sync import build_schedules
from repro.sim import RandomSource
from repro.workload import Workload

REGIONS = ["amer", "emea", "apac", "latam"]


def build_catalog() -> Catalog:
    catalog = Catalog()
    for site, region in enumerate(REGIONS):
        catalog.add_table(
            TableDef(f"positions_{region}", site, row_count=50_000, row_bytes=96)
        )
        catalog.add_table(
            TableDef(f"trades_{region}", site, row_count=150_000, row_bytes=80)
        )
    catalog.add_table(TableDef("instruments", 0, row_count=20_000, row_bytes=64))
    catalog.add_table(TableDef("counterparties", 1, row_count=8_000, row_bytes=64))

    replicated = ["instruments", "counterparties",
                  "positions_amer", "positions_emea"]
    schedules = build_schedules(
        replicated, mode="exponential", mean_interval=5.0,
        source=RandomSource(7, "risk-desk"),
    )
    for name in replicated:
        catalog.add_replica(name, schedules[name])
    return catalog


def build_burst() -> Workload:
    """Twelve risk reports landing within two minutes of the event."""
    rates = DiscountRates(computational=0.12, synchronization=0.12)
    workload = Workload()
    query_id = 1
    for region in REGIONS:
        workload.add(
            DSSQuery(
                query_id=query_id,
                name=f"exposure-{region}",
                tables=(f"positions_{region}", f"trades_{region}",
                        "instruments"),
                business_value=8.0,
                rates=rates,
            ),
            arrival=0.2 * query_id,
        )
        query_id += 1
    for region in REGIONS:
        workload.add(
            DSSQuery(
                query_id=query_id,
                name=f"counterparty-risk-{region}",
                tables=(f"trades_{region}", "counterparties"),
                business_value=5.0,
                rates=rates,
            ),
            arrival=0.2 * query_id,
        )
        query_id += 1
    for scope, tables in (
        ("global-var", tuple(f"positions_{r}" for r in REGIONS)),
        ("liquidity", ("trades_amer", "trades_emea", "instruments")),
        ("stress-scenario", ("positions_apac", "positions_latam",
                             "counterparties")),
        ("desk-pnl", ("trades_apac", "instruments")),
    ):
        workload.add(
            DSSQuery(
                query_id=query_id,
                name=scope,
                tables=tables,
                business_value=6.0,
                rates=rates,
            ),
            arrival=0.2 * query_id,
        )
        query_id += 1
    return workload


def build_trailing_stream() -> Workload:
    """A saturating stream plus one big early report — starvation bait.

    The global value-at-risk report arrives at t=1 but is expensive; small
    desk reports keep arriving at roughly the service rate, so a scheduler
    that greedily maximizes instantaneous IV keeps preferring the fresh
    cheap reports and the VaR report starves (Section 3.3).
    """
    rates = DiscountRates(computational=0.12, synchronization=0.12)
    workload = Workload()
    workload.add(
        DSSQuery(
            query_id=1,
            name="global-var",
            tables=tuple(f"positions_{r}" for r in REGIONS)
            + tuple(f"trades_{r}" for r in REGIONS),
            business_value=6.0,
            rates=rates,
        ),
        arrival=1.0,
    )
    for index in range(40):
        region = REGIONS[index % len(REGIONS)]
        workload.add(
            DSSQuery(
                query_id=index + 2,
                name=f"desk-check-{index + 1}",
                tables=(f"positions_{region}", "instruments"),
                business_value=4.0,
                rates=rates,
            ),
            # Slightly faster than the desk-check service rate, so the
            # queue never fully drains while the stream lasts.
            arrival=1.0 + 0.45 * index,
        )
    return workload


def main() -> None:
    catalog = build_catalog()
    cost_model = CostModel(
        catalog,
        params=CostParameters(local_throughput=150_000.0,
                              remote_throughput=60_000.0),
    )
    rates = DiscountRates(computational=0.12, synchronization=0.12)
    scheduler = WorkloadScheduler(
        catalog, cost_model, rates, ga_config=GAConfig(generations=50), seed=7
    )

    # Part 1 — the burst: MQO vs FIFO.
    burst = build_burst()
    fifo = scheduler.fifo(burst)
    mqo = scheduler.schedule(burst)
    print(f"Market-event burst: {len(burst)} reports in "
          f"{max(burst.arrivals.values()):.1f} minutes\n")
    header = f"{'scheduler':>14}  {'total IV':>9}  {'mean IV':>8}  {'max wait':>9}"
    print(header)
    print("-" * len(header))
    for label, result in (("FIFO", fifo), ("MQO (GA)", mqo.result)):
        print(f"{label:>14}  {result.total_information_value:9.3f}  "
              f"{result.mean_information_value:8.3f}  "
              f"{result.max_wait:8.1f}m")
    gain = mqo.total_information_value - fifo.total_information_value
    print(f"\nMQO recovered {gain:.2f} information value "
          f"({gain / fifo.total_information_value:+.1%}) by reordering the "
          f"burst ({len(mqo.ga_results)} GA run(s) over "
          f"{[len(g) for g in mqo.groups if len(g) > 1]} conflicting queries).")

    # Part 2 — the trailing stream: starvation without aging.
    stream = build_trailing_stream()
    plain = scheduler.greedy_dispatch(stream, aging=None)
    aged = scheduler.greedy_dispatch(stream, aging=AgingPolicy(beta=0.3))

    def var_wait(result) -> float:
        assignment = next(
            a for a in result.assignments if a.query.name == "global-var"
        )
        return assignment.begin - assignment.arrival

    print(f"\nTrailing stream (one big VaR report + {len(stream) - 1} "
          "small desk checks):")
    print(f"  greedy, no aging : VaR report waited {var_wait(plain):6.1f} min "
          f"(total IV {plain.total_information_value:.2f})")
    print(f"  greedy + aging   : VaR report waited {var_wait(aged):6.1f} min "
          f"(total IV {aged.total_information_value:.2f})")
    print("The aging boost (Section 3.3) pulls the starving report forward. "
          "It costs total information value — exactly the paper's trade-off: "
          "starvation 'does not have impact on achieving overall optimal "
          "information value but it may result in many unhappy end users'.")


if __name__ == "__main__":
    main()
