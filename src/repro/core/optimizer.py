"""IVQP: the scatter-and-gather plan search (paper Section 3.1, Figure 4).

The search maximises information value over *when* to start and *which*
table versions to read:

1. **Scatter** — evaluate the all-base-tables immediate plan.  Its IV is the
   incumbent ``opt``; since any plan's IV is at most
   ``BV × (1 − λ_CL)^CL`` (synchronization discount can only lower it),
   no plan whose computational latency exceeds
   ``CL_max = log(opt/BV)/log(1 − λ_CL)`` can win, bounding the explored
   time line at ``b = t_q + CL_max``.

2. **Gather** — at the submission instant and then at each successive
   scheduled synchronization completion ≤ ``b``, order the query's replicas
   stalest-first and evaluate the ``m + 1`` prefix-substitution combos
   (the stalest replica is the one worth replacing with a base read, since
   SL is decided by the earliest-synchronized table).  Each improvement
   tightens ``b``.

The exhaustive enumerator from :mod:`repro.core.enumeration` serves as the
test oracle for this search.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.core.enumeration import (
    CostProvider,
    gather_combos,
    make_plan,
    split_tables,
)
from repro.core.plan import QueryPlan
from repro.core.value import DiscountRates, max_tolerable_latency
from repro.errors import OptimizationError
from repro.federation.catalog import Catalog

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.query import DSSQuery

__all__ = ["SearchDiagnostics", "IVQPOptimizer"]


@dataclass
class SearchDiagnostics:
    """Instrumentation of one scatter-and-gather run."""

    plans_evaluated: int = 0
    time_lines_visited: int = 0
    final_bound: float = 0.0
    bound_tightenings: int = 0
    improvements: list[float] = field(default_factory=list)
    #: True when the walk stopped at ``max_time_lines`` with time lines
    #: still inside the scatter bound — the search space was truncated,
    #: not exhausted by the bound.
    exhausted: bool = False


class IVQPOptimizer:
    """Information value-driven query plan selection."""

    def __init__(
        self,
        catalog: Catalog,
        cost_provider: CostProvider,
        default_rates: DiscountRates,
        max_time_lines: int = 10_000,
    ) -> None:
        if max_time_lines < 1:
            raise OptimizationError("max_time_lines must be >= 1")
        self.catalog = catalog
        self.cost_provider = cost_provider
        self.default_rates = default_rates
        self.max_time_lines = max_time_lines

    def rates_for(self, query: "DSSQuery") -> DiscountRates:
        """Per-query rates if set, otherwise the system default."""
        return query.rates if query.rates is not None else self.default_rates

    # -- main entry point -----------------------------------------------------

    def choose_plan(
        self,
        query: "DSSQuery",
        submitted_at: float,
        diagnostics: SearchDiagnostics | None = None,
    ) -> QueryPlan:
        """The IV-maximal plan for a query submitted at ``submitted_at``."""
        self.catalog.validate_query_tables(query.tables)
        rates = self.rates_for(query)
        diag = diagnostics if diagnostics is not None else SearchDiagnostics()

        # Scatter: the all-base immediate plan always exists and seeds the
        # bound.  (If only base tables are involved, executing immediately
        # dominates any delay — the paper's parenthetical observation.)
        all_base = frozenset(query.tables)
        best = make_plan(
            query, self.catalog, self.cost_provider, rates,
            submitted_at, submitted_at, all_base,
        )
        diag.plans_evaluated += 1
        bound = self._bound(query, best, submitted_at, rates)
        diag.final_bound = bound

        replicated, _ = split_tables(query, self.catalog)
        if not replicated:
            return best

        time_line = submitted_at
        visited = 0
        while time_line <= bound and visited < self.max_time_lines:
            visited += 1
            diag.time_lines_visited += 1
            for combo in gather_combos(query, self.catalog, time_line):
                if combo == all_base and time_line > submitted_at:
                    # Delaying an all-base plan only adds CL; dominated.
                    continue
                candidate = make_plan(
                    query, self.catalog, self.cost_provider, rates,
                    submitted_at, time_line, combo,
                )
                diag.plans_evaluated += 1
                if candidate.information_value > best.information_value:
                    best = candidate
                    diag.improvements.append(candidate.information_value)
                    new_bound = self._bound(query, best, submitted_at, rates)
                    if new_bound < bound:
                        bound = new_bound
                        diag.bound_tightenings += 1
                        diag.final_bound = bound
            time_line = self._next_sync_point(query, replicated, time_line)
        if visited >= self.max_time_lines and time_line <= bound:
            diag.exhausted = True
        return best

    # -- helpers -----------------------------------------------------------------

    def _bound(
        self,
        query: "DSSQuery",
        incumbent: QueryPlan,
        submitted_at: float,
        rates: DiscountRates,
    ) -> float:
        """Latest start time worth exploring given the incumbent IV."""
        tolerable = max_tolerable_latency(
            query.business_value,
            incumbent.information_value,
            rates.computational,
        )
        return submitted_at + tolerable

    def _next_sync_point(
        self,
        query: "DSSQuery",
        replicated: list[str],
        after: float,
    ) -> float:
        """Earliest next synchronization completion among the replicas."""
        return min(
            self.catalog.replica(name).next_sync_after(after)
            for name in replicated
        )
