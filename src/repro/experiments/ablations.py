"""Ablations of the design choices DESIGN.md §6 calls out.

* **ABL1 — starvation prevention (Section 3.3):** a saturating burst
  workload dispatched greedily by raw IV starves somebody; adding the
  aging boost bounds the maximum wait at a small cost in total IV.
* **ABL2 — scatter-gather vs exhaustive search:** identical optima on
  uniform-cost instances, at a fraction of the evaluated plans.
* **ABL3 — placement advisor (future work, Section 6):** advisor-chosen
  replicas beat random placement on expected workload IV.
* **ABL4 — precalculated routing (§3.1's "information values of all
  queries can be pre-calculated for routing"):** table lookups match the
  live scatter-and-gather search's IV while answering faster.
* **ABL5 — GA vs simpler searches:** the paper's Goldberg-citing claim
  that a GA balances exploration and exploitation; compared against random
  search and restarting hill climbing at an equal evaluation budget.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass

from repro.core.aging import AgingPolicy
from repro.core.advisor import PlacementAdvisor, PlacementRecommendation
from repro.core.enumeration import enumerate_plans
from repro.core.optimizer import IVQPOptimizer, SearchDiagnostics
from repro.core.value import DiscountRates
from repro.experiments.config import (
    SyntheticSetup,
    TpchSetup,
    sync_interval_for_ratio,
)
from repro.federation.catalog import Catalog, TableDef
from repro.federation.costmodel import CostModel, StaticCostProvider
from repro.federation.sync import build_schedules
from repro.mqo.scheduler import WorkloadScheduler
from repro.reporting.tables import ResultTable
from repro.sim.rng import RandomSource
from repro.workload.query import DSSQuery, Workload

__all__ = [
    "AblationConfig",
    "run_aging_ablation",
    "run_search_ablation",
    "placement_evaluator",
    "run_advisor_ablation",
    "run_routing_ablation",
    "run_ga_ablation",
]


@dataclass
class AblationConfig:
    """Shared knobs for the three ablations."""

    seed: int = 11
    lambda_both: float = 0.15
    burst_queries: int = 16
    search_trials: int = 8
    advisor_budget: int = 5
    advisor_sample_times: tuple[float, ...] = (20.0, 45.0, 70.0, 95.0)
    ga_seed: int = 0


# -- ABL1: aging ------------------------------------------------------------


def _starvation_stack(config: AblationConfig):
    """One expensive early query plus a saturating stream of cheap ones.

    Greedy-by-IV keeps preferring each freshly arrived cheap query (its IV
    potential is still high), so the expensive query starves — the exact
    pathology Section 3.3 describes.
    """
    setup = SyntheticSetup(
        num_tables=40, num_sites=4, replicated_count=20,
        placement="uniform", seed=config.seed,
    )
    placement = setup.placement_map()
    catalog = Catalog()
    for name in setup.instance.table_names:
        catalog.add_table(
            TableDef(name, placement[name], setup.instance.row_counts[name])
        )
    replicated = setup.replicated_for_ivqp()
    schedules = build_schedules(
        replicated, mode="shared", mean_interval=1.0,
        source=RandomSource(config.seed, "abl1"),
    )
    for name in replicated:
        catalog.add_replica(name, schedules[name])
    rates = DiscountRates.symmetric(config.lambda_both)
    scheduler = WorkloadScheduler(catalog, CostModel(catalog), rates)

    tables = sorted(
        setup.instance.table_names,
        key=lambda name: setup.instance.row_counts[name],
    )
    big = DSSQuery(
        query_id=1, name="big-report", tables=tuple(tables[-8:]),
        business_value=2.0, rates=rates,
    )
    workload = Workload()
    workload.add(big, arrival=1.0)
    small_tables = tables[: len(tables) // 2]
    # Small queries: service time just above their inter-arrival gap, so
    # the queue never drains while the stream lasts.
    for index in range(config.burst_queries):
        table_name = small_tables[index % len(small_tables)]
        workload.add(
            DSSQuery(
                query_id=index + 2,
                name=f"small-{index + 1}",
                tables=(table_name,),
                business_value=1.0,
                rates=rates,
                base_work=600.0,
            ),
            arrival=1.0 + 0.1 * index,
        )
    return scheduler, workload


def run_aging_ablation(config: AblationConfig | None = None) -> ResultTable:
    """ABL1: greedy dispatch with and without the aging boost."""
    config = config or AblationConfig()
    scheduler, workload = _starvation_stack(config)
    table = ResultTable(
        title="ABL1: starvation prevention (greedy dispatch, saturating stream)",
        headers=["policy", "mean_iv", "max_wait_minutes", "big_report_wait"],
    )

    def big_wait(result) -> float:
        assignment = next(
            a for a in result.assignments if a.query.name == "big-report"
        )
        return assignment.begin - assignment.arrival

    plain = scheduler.greedy_dispatch(workload, aging=None)
    aged = scheduler.greedy_dispatch(
        workload, aging=AgingPolicy(beta=config.lambda_both * 2)
    )
    table.add(
        "no-aging", plain.mean_information_value, plain.max_wait,
        big_wait(plain),
    )
    table.add(
        "aging", aged.mean_information_value, aged.max_wait, big_wait(aged)
    )
    return table


# -- ABL2: search ------------------------------------------------------------


def run_search_ablation(config: AblationConfig | None = None) -> ResultTable:
    """ABL2: scatter-gather vs exhaustive enumeration."""
    config = config or AblationConfig()
    rng = RandomSource(config.seed, "abl2")
    rates = DiscountRates.symmetric(0.1)
    table = ResultTable(
        title="ABL2: scatter-gather vs exhaustive (uniform per-table costs)",
        headers=[
            "trial", "tables", "sg_iv", "oracle_iv", "sg_plans",
            "oracle_plans", "sg_ms", "oracle_ms",
        ],
    )
    for trial in range(config.search_trials):
        n_tables = rng.randint(3, 6)
        catalog = Catalog()
        names = []
        for index in range(n_tables):
            name = f"T{index + 1}"
            names.append(name)
            catalog.add_table(TableDef(name, site=index, row_count=1_000))
            period = rng.uniform(4.0, 14.0)
            schedule = build_schedules(
                [name], mode="periodic", mean_interval=period,
                source=RandomSource(config.seed * 100 + trial, name),
                stagger=True,
            )[name]
            catalog.add_replica(name, schedule)
        costs = {k: 2.0 + 2.0 * k for k in range(n_tables + 1)}
        provider = StaticCostProvider(catalog, costs)
        query = DSSQuery(query_id=1, name=f"abl2-{trial}", tables=tuple(names))
        submit = rng.uniform(5.0, 30.0)

        optimizer = IVQPOptimizer(catalog, provider, rates)
        diag = SearchDiagnostics()
        t0 = time.perf_counter()
        chosen = optimizer.choose_plan(query, submit, diag)
        sg_ms = (time.perf_counter() - t0) * 1_000

        horizon = submit + 2.0 * costs[n_tables]
        t0 = time.perf_counter()
        plans = enumerate_plans(
            query, catalog, provider, rates, submit, horizon, exhaustive=True
        )
        oracle = max(plans, key=lambda plan: plan.information_value)
        oracle_ms = (time.perf_counter() - t0) * 1_000

        table.add(
            trial, n_tables,
            chosen.information_value, oracle.information_value,
            diag.plans_evaluated, len(plans), sg_ms, oracle_ms,
        )
    return table


# -- ABL3: placement advisor ---------------------------------------------------


def placement_evaluator(
    setup: TpchSetup,
    rates: DiscountRates,
    sync_mean_interval: float,
    sample_times: tuple[float, ...],
    queries: list[DSSQuery] | None = None,
) -> Callable[[frozenset[str]], float]:
    """Build the standard advisor evaluator: expected uncontended IV.

    Scores a candidate replica set by rebuilding the catalog with those
    replicas (shared sync budget), running the IVQP optimizer for every
    query at each sample submission time, and averaging the plans' IVs.
    """
    instance = setup.instance
    specs = setup.table_specs()
    workload = queries if queries is not None else setup.queries()

    def evaluate(replicas: frozenset[str]) -> float:
        catalog = Catalog()
        for spec in specs:
            catalog.add_table(
                TableDef(spec.name, spec.site, spec.row_count, spec.row_bytes)
            )
        if replicas:
            schedules = build_schedules(
                sorted(replicas), mode="shared",
                mean_interval=sync_mean_interval,
                source=RandomSource(setup.seed, "advisor"),
            )
            for name in sorted(replicas):
                catalog.add_replica(name, schedules[name])
        cost_model = CostModel(catalog, engine_db=instance.database)
        optimizer = IVQPOptimizer(catalog, cost_model, rates)
        total = 0.0
        count = 0
        for query in workload:
            for submit in sample_times:
                plan = optimizer.choose_plan(query, submit)
                total += plan.information_value
                count += 1
        return total / max(count, 1)

    return evaluate


def run_advisor_ablation(config: AblationConfig | None = None) -> ResultTable:
    """ABL3: advisor placement vs random placement vs no replication."""
    config = config or AblationConfig()
    setup = TpchSetup()
    rates = DiscountRates.symmetric(0.05)
    interval = sync_interval_for_ratio(10.0)
    evaluate = placement_evaluator(
        setup, rates, interval, config.advisor_sample_times
    )
    advisor = PlacementAdvisor(
        candidate_tables=setup.instance.table_names,
        evaluate=evaluate,
        budget=config.advisor_budget,
        swap_passes=0,  # greedy only; swaps are expensive on this evaluator
    )
    recommendation: PlacementRecommendation = advisor.recommend()

    random_pick = frozenset(setup.replicated_for_ivqp())
    table = ResultTable(
        title="ABL3: placement advisor vs random replication (TPC-H)",
        headers=["placement", "replicas", "expected_iv"],
    )
    table.add("none", 0, evaluate(frozenset()))
    table.add("random-5", len(random_pick), evaluate(random_pick))
    table.add(
        "advisor", len(recommendation.replicas), recommendation.expected_value
    )
    return table


# -- ABL4: precalculated routing ------------------------------------------------


def run_routing_ablation(config: AblationConfig | None = None) -> ResultTable:
    """ABL4: precomputed routing table vs live scatter-and-gather search."""
    from repro.core.routing import RoutingTable

    config = config or AblationConfig()
    setup = TpchSetup(scale=0.001, seed=config.seed)
    rates = DiscountRates.symmetric(0.05)
    catalog = Catalog()
    for spec in setup.table_specs():
        catalog.add_table(
            TableDef(spec.name, spec.site, spec.row_count, spec.row_bytes)
        )
    replicated = list(setup.instance.table_names)
    schedules = build_schedules(
        replicated, mode="shared",
        mean_interval=sync_interval_for_ratio(10.0),
        source=RandomSource(config.seed, "abl4"),
    )
    for name in replicated:
        catalog.add_replica(name, schedules[name])
    cost_model = CostModel(catalog, engine_db=setup.instance.database)
    queries = setup.queries()

    routing_table = RoutingTable(catalog, cost_model, rates, horizon=120.0)
    t0 = time.perf_counter()
    intervals = routing_table.register_all(queries)
    precompute_ms = (time.perf_counter() - t0) * 1_000

    optimizer = IVQPOptimizer(catalog, cost_model, rates)
    submits = [7.5 + 4.1 * index for index in range(24)]

    t0 = time.perf_counter()
    live_total = 0.0
    for query in queries:
        for submit in submits:
            live_total += optimizer.choose_plan(query, submit).information_value
    live_ms = (time.perf_counter() - t0) * 1_000

    t0 = time.perf_counter()
    routed_total = 0.0
    for query in queries:
        for submit in submits:
            routed_total += routing_table.route(query, submit).information_value
    routed_ms = (time.perf_counter() - t0) * 1_000

    lookups = len(queries) * len(submits)
    table = ResultTable(
        title="ABL4: precalculated routing vs live search "
        f"({len(queries)} queries x {len(submits)} submissions, "
        f"{intervals} intervals precomputed in {precompute_ms:.0f} ms)",
        headers=["router", "mean_iv", "total_ms", "us_per_lookup"],
    )
    table.add("live-search", live_total / lookups, live_ms,
              live_ms * 1_000 / lookups)
    table.add("routing-table", routed_total / lookups, routed_ms,
              routed_ms * 1_000 / lookups)
    return table


# -- ABL5: GA vs simpler order searches ------------------------------------------


def run_ga_ablation(config: AblationConfig | None = None) -> ResultTable:
    """ABL5: GA vs random search vs hill climbing at equal budgets."""
    from repro.experiments.fig9 import Fig9Config, build_mqo_scheduler
    from repro.mqo.ga import GeneticAlgorithm
    from repro.mqo.search_baselines import hill_climb, random_search
    from repro.workload.generator import overlapping_workload, random_queries

    config = config or AblationConfig()
    fig9 = Fig9Config()
    scheduler, setup = build_mqo_scheduler(fig9)
    queries = random_queries(setup.instance, count=12, seed=config.seed + 5)
    workload = overlapping_workload(
        queries, overlap_rate=1.0, seed=config.seed + 6, burst_size=12
    )
    evaluator = scheduler._evaluator(workload)
    genes = [query.query_id for query in workload.queries]
    arrival_order = [q.query_id for q in workload.sorted_by_arrival()]

    def fitness(permutation: list[int]) -> float:
        return evaluator.evaluate(permutation).total_information_value

    ga = GeneticAlgorithm(genes, fitness, config=fig9.ga, seed=config.seed)
    ga_result = ga.run(seed_chromosomes=[arrival_order])
    budget = max(ga_result.fitness_calls, 2)

    random_result = random_search(
        genes, fitness, budget, seed=config.seed,
        seed_chromosome=arrival_order,
    )
    climb_result = hill_climb(
        genes, fitness, budget, seed=config.seed,
        seed_chromosome=arrival_order,
    )

    table = ResultTable(
        title=f"ABL5: workload-order search strategies (budget = {budget} "
        "distinct evaluations for the GA; equal raw budget for others)",
        headers=["strategy", "total_iv", "evaluations"],
    )
    table.add("arrival-order", fitness(arrival_order), 1)
    table.add("random-search", random_result.best_fitness,
              random_result.evaluations)
    table.add("hill-climb", climb_result.best_fitness,
              climb_result.evaluations)
    table.add("genetic-algorithm", ga_result.best_fitness,
              ga_result.fitness_calls)
    return table
