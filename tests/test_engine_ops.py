"""Unit tests: physical operators."""

from __future__ import annotations

import pytest

from repro.engine.expr import Col, Const
from repro.engine.ops import (
    AggSpec,
    Aggregate,
    ExecutionStats,
    Filter,
    HashJoin,
    Limit,
    Project,
    Scan,
    Sort,
)
from repro.engine.schema import Column, DType, TableSchema
from repro.engine.table import Table
from repro.errors import EngineError


def users_table() -> Table:
    schema = TableSchema(
        "users",
        (Column("id", DType.INT), Column("team", DType.STR),
         Column("score", DType.FLOAT)),
    )
    return Table(schema, rows=[
        (1, "red", 10.0),
        (2, "blue", 20.0),
        (3, "red", 30.0),
        (4, "blue", None),
    ])


def orders_table() -> Table:
    schema = TableSchema(
        "orders",
        (Column("order_id", DType.INT), Column("user_id", DType.INT),
         Column("amount", DType.FLOAT)),
    )
    return Table(schema, rows=[
        (100, 1, 5.0),
        (101, 1, 7.0),
        (102, 3, 9.0),
        (103, None, 11.0),
    ])


class TestScanFilterProject:
    def test_scan_qualifies_columns(self):
        stats = ExecutionStats()
        scan = Scan(users_table(), "u", stats)
        rows = list(scan)
        assert scan.columns == ("u.id", "u.team", "u.score")
        assert rows[0]["u.id"] == 1
        assert stats.rows_scanned == 4

    def test_filter_keeps_matching_rows(self):
        stats = ExecutionStats()
        node = Filter(Scan(users_table(), "u", stats), Col("u.team") == "red")
        rows = list(node)
        assert [row["u.id"] for row in rows] == [1, 3]
        assert stats.rows_filtered == 4

    def test_project_computes_expressions(self):
        stats = ExecutionStats()
        node = Project(
            Scan(users_table(), "u", stats),
            [("double_score", Col("u.score") * Const(2.0))],
        )
        rows = list(node)
        assert rows[0] == {"double_score": 20.0}
        assert rows[3] == {"double_score": None}

    def test_project_requires_outputs(self):
        stats = ExecutionStats()
        with pytest.raises(EngineError):
            Project(Scan(users_table(), "u", stats), [])


class TestHashJoin:
    def test_inner_join_matches_keys(self):
        stats = ExecutionStats()
        left = Scan(users_table(), "u", stats)
        right = Scan(orders_table(), "o", stats)
        join = HashJoin(left, right, ["u.id"], ["o.user_id"])
        rows = list(join)
        pairs = sorted((row["u.id"], row["o.order_id"]) for row in rows)
        assert pairs == [(1, 100), (1, 101), (3, 102)]
        assert stats.rows_joined == 3
        assert stats.hash_build_rows == 4

    def test_null_keys_never_join(self):
        stats = ExecutionStats()
        join = HashJoin(
            Scan(users_table(), "u", stats),
            Scan(orders_table(), "o", stats),
            ["u.id"], ["o.user_id"],
        )
        assert all(row["o.order_id"] != 103 for row in join)

    def test_key_arity_must_match(self):
        stats = ExecutionStats()
        with pytest.raises(EngineError):
            HashJoin(
                Scan(users_table(), "u", stats),
                Scan(orders_table(), "o", stats),
                ["u.id"], [],
            )

    def test_children_must_share_stats(self):
        with pytest.raises(EngineError):
            HashJoin(
                Scan(users_table(), "u", ExecutionStats()),
                Scan(orders_table(), "o", ExecutionStats()),
                ["u.id"], ["o.user_id"],
            )


class TestAggregate:
    def test_group_by_with_aggregates(self):
        stats = ExecutionStats()
        node = Aggregate(
            Scan(users_table(), "u", stats),
            group_by=["u.team"],
            aggregates=[
                AggSpec("sum", Col("u.score"), "total"),
                AggSpec("count", None, "n"),
                AggSpec("min", Col("u.score"), "lowest"),
                AggSpec("max", Col("u.score"), "highest"),
                AggSpec("avg", Col("u.score"), "mean"),
            ],
        )
        by_team = {row["u.team"]: row for row in node}
        assert by_team["red"]["total"] == 40.0
        assert by_team["red"]["n"] == 2
        assert by_team["blue"]["total"] == 20.0  # NULL ignored by sum
        assert by_team["blue"]["lowest"] == 20.0
        assert by_team["red"]["mean"] == pytest.approx(20.0)
        assert by_team["red"]["highest"] == 30.0

    def test_global_aggregate_over_empty_input_yields_one_row(self):
        stats = ExecutionStats()
        node = Aggregate(
            Filter(Scan(users_table(), "u", stats), Col("u.id") > 999),
            group_by=[],
            aggregates=[AggSpec("count", None, "n"),
                        AggSpec("sum", Col("u.score"), "total")],
        )
        rows = list(node)
        assert rows == [{"n": 0, "total": None}]

    def test_group_by_empty_groups_absent(self):
        stats = ExecutionStats()
        node = Aggregate(
            Filter(Scan(users_table(), "u", stats), Col("u.id") > 999),
            group_by=["u.team"],
            aggregates=[AggSpec("count", None, "n")],
        )
        assert list(node) == []

    def test_aggspec_validation(self):
        with pytest.raises(EngineError):
            AggSpec("median", Col("u.score"), "m")
        with pytest.raises(EngineError):
            AggSpec("sum", None, "s")

    def test_aggregate_needs_keys_or_specs(self):
        stats = ExecutionStats()
        with pytest.raises(EngineError):
            Aggregate(Scan(users_table(), "u", stats), [], [])


class TestSortLimit:
    def test_sort_ascending_with_nulls_last(self):
        stats = ExecutionStats()
        node = Sort(Scan(users_table(), "u", stats), ["u.score"])
        scores = [row["u.score"] for row in node]
        assert scores == [10.0, 20.0, 30.0, None]

    def test_sort_descending(self):
        stats = ExecutionStats()
        node = Sort(
            Scan(users_table(), "u", stats), ["u.id"], descending=True
        )
        assert [row["u.id"] for row in node] == [4, 3, 2, 1]

    def test_sort_requires_keys(self):
        stats = ExecutionStats()
        with pytest.raises(EngineError):
            Sort(Scan(users_table(), "u", stats), [])

    def test_limit_truncates(self):
        stats = ExecutionStats()
        node = Limit(Scan(users_table(), "u", stats), 2)
        assert len(list(node)) == 2

    def test_limit_zero(self):
        stats = ExecutionStats()
        assert list(Limit(Scan(users_table(), "u", stats), 0)) == []

    def test_limit_rejects_negative(self):
        stats = ExecutionStats()
        with pytest.raises(EngineError):
            Limit(Scan(users_table(), "u", stats), -1)


class TestExecutionStats:
    def test_total_work_formula(self):
        stats = ExecutionStats(
            rows_scanned=10, rows_filtered=5, rows_joined=3,
            rows_output=2, hash_build_rows=4,
        )
        assert stats.total_work == 10 + 5 + 6 + 4 + 2
