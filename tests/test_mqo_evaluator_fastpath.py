"""Fast-path equivalence and bookkeeping of the workload evaluator.

The layered fast path (compiled plans, upper-bound pruning, prefix trie,
choice memo) must be invisible: bit-identical assignments and totals to
the naive replay on every workload and permutation, under any cache
pressure.  These tests drive randomized workloads through both paths and
poke at the caps and counters.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.value import DiscountRates
from repro.errors import OptimizationError
from repro.federation.catalog import Catalog, FixedSyncSchedule, TableDef
from repro.federation.costmodel import CostModel, CostParameters
from repro.mqo.evaluator import WorkloadEvaluator
from repro.workload.query import DSSQuery, Workload

NUM_TABLES = 8
NUM_SITES = 3


def build_catalog() -> Catalog:
    catalog = Catalog()
    for index in range(NUM_TABLES):
        name = f"t{index}"
        catalog.add_table(
            TableDef(name, site=index % NUM_SITES, row_count=3_000)
        )
        catalog.add_replica(
            name,
            FixedSyncSchedule(
                [1.0 + index * 0.5 + k * 6.0 for k in range(30)],
                tail_period=6.0,
            ),
        )
    return catalog


def build_workload(
    query_specs: list[tuple[int, float, float]],
) -> Workload:
    """Queries from (table_offset, arrival, base_work) triples."""
    workload = Workload()
    for index, (offset, arrival, work) in enumerate(query_specs):
        tables = tuple(
            f"t{(offset + j) % NUM_TABLES}" for j in range(1 + offset % 3)
        )
        workload.add(
            DSSQuery(
                query_id=index + 1, name=f"q{index + 1}", tables=tables,
                base_work=work,
            ),
            arrival=arrival,
        )
    return workload


def build_evaluator(workload: Workload, **kwargs) -> WorkloadEvaluator:
    catalog = build_catalog()
    cost_model = CostModel(catalog, params=CostParameters())
    rates = DiscountRates.symmetric(0.1)
    return WorkloadEvaluator(catalog, cost_model, rates, workload, **kwargs)


def assert_identical(evaluator: WorkloadEvaluator, perm: list[int]) -> None:
    fast = evaluator.evaluate(list(perm))
    naive = evaluator.evaluate_naive(list(perm))
    assert len(fast.assignments) == len(naive.assignments)
    for a, b in zip(fast.assignments, naive.assignments):
        assert a.plan is b.plan
        assert a.begin == b.begin
        assert a.completed == b.completed
        assert a.data_timestamp == b.data_timestamp
    assert fast.total_information_value == naive.total_information_value


query_spec = st.tuples(
    st.integers(min_value=0, max_value=NUM_TABLES - 1),
    st.floats(min_value=0.0, max_value=30.0),
    st.floats(min_value=1_000.0, max_value=20_000.0),
)


class TestFastPathEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        specs=st.lists(query_spec, min_size=2, max_size=6),
        data=st.data(),
    )
    def test_random_workloads_and_permutations(self, specs, data):
        workload = build_workload(specs)
        evaluator = build_evaluator(workload)
        qids = [q.query_id for q in workload.queries]
        for _ in range(4):
            perm = data.draw(st.permutations(qids))
            assert_identical(evaluator, list(perm))

    def test_shared_prefix_reuses_trie(self):
        workload = build_workload(
            [(0, 1.0, 8_000.0), (1, 1.2, 8_000.0),
             (2, 1.4, 8_000.0), (3, 1.6, 8_000.0)]
        )
        evaluator = build_evaluator(workload)
        assert_identical(evaluator, [1, 2, 3, 4])
        # Same prefix, different tail: resume depth 2 at least.
        assert_identical(evaluator, [1, 2, 4, 3])
        assert evaluator.stats.prefix_hits >= 1
        assert evaluator.stats.prefix_queries_skipped >= 2

    def test_tiny_trie_cap_still_correct(self):
        workload = build_workload(
            [(0, 1.0, 8_000.0), (1, 1.1, 8_000.0), (2, 1.2, 8_000.0)]
        )
        evaluator = build_evaluator(workload, max_prefix_entries=2)
        perms = [[1, 2, 3], [2, 1, 3], [3, 2, 1], [1, 3, 2], [2, 3, 1]]
        for perm in perms:
            assert_identical(evaluator, perm)
        assert evaluator.stats.trie_evictions > 0
        assert evaluator.stats.trie_entries <= 2

    def test_zero_cap_disables_memoization(self):
        workload = build_workload([(0, 1.0, 8_000.0), (1, 1.1, 8_000.0)])
        evaluator = build_evaluator(workload, max_prefix_entries=0)
        assert_identical(evaluator, [1, 2])
        assert_identical(evaluator, [1, 2])
        assert evaluator.stats.trie_entries == 0
        assert evaluator.stats.prefix_hits == 0

    def test_fast_path_off_uses_naive(self):
        workload = build_workload([(0, 1.0, 8_000.0), (1, 1.1, 8_000.0)])
        evaluator = build_evaluator(workload, fast_path=False)
        evaluator.evaluate([1, 2])
        assert evaluator.stats.evaluations == 0  # naive replay is unstatted

    def test_repeated_ids_rejected(self):
        workload = build_workload([(0, 1.0, 8_000.0), (1, 1.1, 8_000.0)])
        evaluator = build_evaluator(workload)
        with pytest.raises(OptimizationError):
            evaluator.evaluate_sequence([1, 1])
        with pytest.raises(OptimizationError):
            evaluator.evaluate_naive([2, 2])


class TestCandidateTruncationStats:
    def test_max_candidates_cut_is_recorded(self):
        workload = build_workload([(2, 1.0, 8_000.0)])
        evaluator = build_evaluator(workload, max_candidates=1)
        query = workload.queries[0]
        plans = evaluator.candidates(query)
        assert len(plans) == 1
        assert evaluator.stats.candidate_plans_dropped > 0

    def test_horizon_cap_is_recorded(self):
        # For small rates the tolerable delay is roughly twice the plan
        # cost, so a many-hour query must hit the 24-hour clamp.
        workload = build_workload([(2, 1.0, 200_000.0)])
        catalog = build_catalog()
        cost_model = CostModel(
            catalog,
            params=CostParameters(
                local_throughput=50.0, remote_throughput=50.0
            ),
        )
        rates = DiscountRates.symmetric(1e-4)
        evaluator = WorkloadEvaluator(catalog, cost_model, rates, workload)
        evaluator.candidates(workload.queries[0])
        assert evaluator.stats.horizon_capped == 1

    def test_stats_merge_and_summary(self):
        workload = build_workload([(0, 1.0, 8_000.0), (1, 1.1, 8_000.0)])
        evaluator = build_evaluator(workload)
        assert_identical(evaluator, [1, 2])
        assert_identical(evaluator, [2, 1])
        from repro.mqo.evaluator import EvaluatorStats

        totals = EvaluatorStats()
        totals.merge(evaluator.stats)
        totals.merge(evaluator.stats)
        assert totals.evaluations == 2 * evaluator.stats.evaluations
        assert totals.realize_calls == 2 * evaluator.stats.realize_calls
        summary = totals.summary()
        assert "realize_calls=" in summary
        assert "prefix_hits=" in summary
