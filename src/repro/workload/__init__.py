"""DSS queries, workloads, TPC-H query set, and random workload generators."""

from repro.workload.arrival import ArrivalProcess, poisson_arrivals
from repro.workload.business import POLICIES, assign_business_values
from repro.workload.generator import (
    WORK_PER_ROW,
    overlapping_workload,
    random_queries,
)
from repro.workload.query import DSSQuery, Workload
from repro.workload.serialize import (
    load_workload,
    save_workload,
    workload_from_dict,
    workload_to_dict,
)
from repro.workload.tpch_queries import TPCH_FOOTPRINTS, tpch_queries, tpch_query

__all__ = [
    "ArrivalProcess",
    "DSSQuery",
    "POLICIES",
    "assign_business_values",
    "TPCH_FOOTPRINTS",
    "WORK_PER_ROW",
    "Workload",
    "load_workload",
    "overlapping_workload",
    "poisson_arrivals",
    "random_queries",
    "save_workload",
    "tpch_queries",
    "tpch_query",
    "workload_from_dict",
    "workload_to_dict",
]
