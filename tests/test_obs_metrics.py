"""Unit tests: the metrics registry (counters, gauges, histograms, adapters)."""

from __future__ import annotations

import json

import pytest

from repro.errors import SimulationError
from repro.federation.faults import FaultStats
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.sim.monitor import Monitor


class TestCounter:
    def test_increments_accumulate(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.snapshot() == 3.5

    def test_negative_increment_rejected(self):
        with pytest.raises(SimulationError):
            Counter("c").inc(-1)


class TestGauge:
    def test_set_replaces(self):
        gauge = Gauge("g")
        gauge.set(5)
        gauge.set(-2.5)
        assert gauge.snapshot() == -2.5


class TestHistogram:
    def test_bucket_placement_and_overflow(self):
        hist = Histogram("h", bounds=(1.0, 5.0))
        for value in (0.5, 1.0, 3.0, 100.0):
            hist.observe(value)
        # <=1.0 -> bucket 0, <=5.0 -> bucket 1, beyond -> overflow.
        assert hist.counts == [2, 1, 1]
        assert hist.count == 4
        assert hist.minimum == 0.5 and hist.maximum == 100.0

    def test_mean_and_quantile(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0):
            hist.observe(value)
        assert hist.mean == pytest.approx(1.625)
        # target 2 lands halfway through the (1, 2] bucket -> interpolated.
        assert hist.quantile(0.5) == pytest.approx(1.5)
        # q=1 interpolates to the overflow bucket's top = the true maximum.
        assert hist.quantile(1.0) == pytest.approx(3.0)

    def test_quantile_interpolation_properties(self):
        hist = Histogram("h", bounds=(1.0, 2.0, 4.0))
        for value in (0.2, 0.8, 1.5, 2.5, 3.5, 6.0):
            hist.observe(value)
        # Clamped to the observed range and monotone non-decreasing in q.
        grid = [i / 20 for i in range(21)]
        estimates = [hist.quantile(q) for q in grid]
        assert all(hist.minimum <= e <= hist.maximum for e in estimates)
        assert estimates == sorted(estimates)
        assert estimates[0] == hist.minimum
        assert estimates[-1] == hist.maximum

    def test_quantile_single_bucket_degrades_to_span(self):
        hist = Histogram("h", bounds=(10.0,))
        for value in (2.0, 4.0, 6.0):
            hist.observe(value)
        assert hist.quantile(0.0) == 2.0
        assert hist.quantile(1.0) == 6.0
        assert 2.0 <= hist.quantile(0.5) <= 6.0

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(SimulationError):
            Histogram("h", bounds=(2.0, 1.0))

    def test_quantile_validation(self):
        hist = Histogram("h", bounds=(1.0,))
        with pytest.raises(SimulationError):
            hist.quantile(1.5)
        with pytest.raises(SimulationError):
            hist.quantile(0.5)  # empty

    def test_snapshot_shape(self):
        hist = Histogram("h", bounds=(1.0,))
        hist.observe(0.5)
        snapshot = hist.snapshot()
        assert snapshot["count"] == 1
        assert snapshot["min"] == 0.5 and snapshot["max"] == 0.5


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_cross_type_name_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("metric")
        with pytest.raises(SimulationError):
            registry.gauge("metric")
        with pytest.raises(SimulationError):
            registry.histogram("metric")

    def test_ingest_counters_from_fault_stats(self):
        stats = FaultStats(outages_scheduled=3, outage_minutes=12.5)
        registry = MetricsRegistry()
        registry.ingest_counters("faults", stats)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["faults.outages_scheduled"] == 3
        assert snapshot["counters"]["faults.outage_minutes"] == 12.5

    def test_ingest_counters_requires_dataclass(self):
        with pytest.raises(SimulationError):
            MetricsRegistry().ingest_counters("x", object())

    def test_observe_monitor_publishes_aggregates(self):
        monitor = Monitor("m")
        for value in (1.0, 3.0):
            monitor.observe(value)
        registry = MetricsRegistry()
        registry.observe_monitor("m", monitor)
        gauges = registry.snapshot()["gauges"]
        assert gauges["m.count"] == 2
        assert gauges["m.mean"] == 2.0
        assert gauges["m.min"] == 1.0 and gauges["m.max"] == 3.0

    def test_to_json_is_valid_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter("b").inc()
        registry.counter("a").inc(2)
        data = json.loads(registry.to_json())
        assert list(data["counters"]) == ["a", "b"]


class TestSystemRegistry:
    def test_registry_from_traced_system(self):
        from repro.baselines import ivqp_router
        from repro.core.value import DiscountRates
        from repro.federation.system import (
            SystemConfig,
            TableSpec,
            build_system,
        )
        from repro.obs.metrics import registry_from_system
        from repro.workload.query import DSSQuery

        config = SystemConfig(
            tables=[
                TableSpec("a", site=0, row_count=1_000),
                TableSpec("b", site=1, row_count=2_000),
            ],
            replicated=["a"],
            sync_mode="periodic",
            sync_mean_interval=4.0,
            rates=DiscountRates(0.02, 0.02),
            trace=True,
            seed=2,
        )
        system = build_system(config, ivqp_router)
        for qid in range(3):
            system.submit(
                DSSQuery(query_id=qid, name=f"q{qid}", tables=("a", "b")),
                at=float(qid) * 5.0,
            )
        system.run()

        snapshot = registry_from_system(system).snapshot()
        assert snapshot["counters"]["query.completed"] == 3
        assert snapshot["counters"]["sync.total"] == system.replication.total_syncs
        assert snapshot["counters"]["trace.records"] == len(system.tracer)
        # Nothing was evicted in this run; the drop counter is exposed so
        # dashboards (and the checker) can see when a capacity-bounded
        # tracer lost its prefix.
        assert snapshot["counters"]["tracer.dropped_events"] == 0
        assert snapshot["gauges"]["query.iv.count"] == 3
        assert snapshot["histograms"]["query.cl.hist"]["count"] == 3
        # system.metrics() is the same snapshot behind a method.
        assert system.metrics().snapshot() == snapshot
