"""Unit tests: journal framing, torn-write detection, crash injection.

The journal's storage discipline claims that *any* byte-level damage a
crash can inflict — truncation mid-record, a flipped byte, garbage
appended by a dying process — is detected at the offset where it
happened, and everything before that offset stays readable.  These tests
exercise the claim exhaustively: every possible truncation point of a
multi-record journal, systematic single-byte corruption, and the fault
injector the crash/resume harness is built on.
"""

from __future__ import annotations

import pytest

from repro.durable.journal import (
    SCHEMA_VERSION,
    InjectedCrash,
    JournalWriter,
    encode_record,
    read_journal,
    scan_journal,
)
from repro.errors import DurabilityError


def sample_records(count: int = 8) -> list[dict]:
    """Small kinded payloads with floats that must round-trip losslessly."""
    return [
        {"kind": "pop", "time": 1.0 / 3.0 + index * 0.1, "tag": f"e{index}",
         "payload": index}
        for index in range(count)
    ]


def write_journal(path, records) -> int:
    writer = JournalWriter(path)
    for record in records:
        writer.append(record)
    writer.close()
    return writer.bytes_written


class TestFraming:
    def test_round_trip_is_lossless(self, tmp_path):
        path = tmp_path / "j"
        records = sample_records()
        size = write_journal(path, records)
        loaded, valid_bytes, tail_error = scan_journal(path)
        assert [payload for payload, _ in loaded] == records
        assert valid_bytes == size == path.stat().st_size
        assert tail_error is None

    def test_floats_round_trip_bit_equal(self, tmp_path):
        # repr-based JSON floats: the exact double comes back, not an
        # approximation — the bit-equality contract everything rides on.
        path = tmp_path / "j"
        ugly = {"kind": "x", "value": 0.1 + 0.2, "third": 1.0 / 3.0}
        write_journal(path, [ugly])
        [(payload, _)] = read_journal(path)
        assert payload["value"] == 0.1 + 0.2
        assert payload["third"] == 1.0 / 3.0

    def test_append_returns_record_offsets(self, tmp_path):
        writer = JournalWriter(tmp_path / "j")
        offsets = [writer.append(r) for r in sample_records(3)]
        writer.close()
        loaded = read_journal(tmp_path / "j")
        assert [offset for _, offset in loaded] == offsets

    def test_encode_rejects_nan(self):
        with pytest.raises(ValueError):
            encode_record({"kind": "x", "v": float("nan")})

    def test_schema_version_is_pinned(self):
        # Bumping the schema requires a migration path and a new golden
        # fixture — this assertion is the tripwire.
        assert SCHEMA_VERSION == 1

    def test_fsync_cadence_validation(self, tmp_path):
        with pytest.raises(DurabilityError):
            JournalWriter(tmp_path / "j", fsync_every=0)

    def test_closed_writer_rejects_appends(self, tmp_path):
        writer = JournalWriter(tmp_path / "j")
        writer.append({"kind": "x"})
        writer.close()
        assert writer.closed
        with pytest.raises(DurabilityError):
            writer.append({"kind": "y"})

    def test_empty_journal_scans_clean(self, tmp_path):
        path = tmp_path / "j"
        path.write_bytes(b"")
        assert scan_journal(path) == ([], 0, None)

    def test_missing_journal_raises(self, tmp_path):
        with pytest.raises(DurabilityError):
            scan_journal(tmp_path / "nope")


class TestTornWrites:
    def test_every_truncation_point_recovers_the_full_prefix(self, tmp_path):
        """Cut the journal at *every* byte; the valid prefix always loads."""
        path = tmp_path / "j"
        records = sample_records()
        write_journal(path, records)
        data = path.read_bytes()
        clean, _, _ = scan_journal(path)
        boundaries = [offset for _, offset in clean] + [len(data)]
        torn = tmp_path / "torn"
        for cut in range(len(data)):
            torn.write_bytes(data[:cut])
            loaded, valid_bytes, tail_error = scan_journal(torn)
            expected = sum(1 for b in boundaries[1:] if b <= cut)
            assert len(loaded) == expected, f"cut at {cut}"
            assert valid_bytes == boundaries[expected], f"cut at {cut}"
            if cut in boundaries:
                assert tail_error is None
            else:
                assert isinstance(tail_error, DurabilityError)
                assert tail_error.offset == valid_bytes

    def test_single_byte_corruption_is_caught_at_its_record(self, tmp_path):
        """Flip one byte at a spread of positions; the damaged record and
        everything after it is rejected, everything before survives."""
        path = tmp_path / "j"
        write_journal(path, sample_records())
        data = path.read_bytes()
        clean, _, _ = scan_journal(path)
        boundaries = [offset for _, offset in clean] + [len(data)]
        bad = tmp_path / "bad"
        for position in range(0, len(data), 7):
            flipped = bytearray(data)
            flipped[position] ^= 0x55
            bad.write_bytes(bytes(flipped))
            loaded, valid_bytes, tail_error = scan_journal(bad)
            # The record containing the flipped byte must not validate.
            damaged = max(b for b in boundaries[:-1] if b <= position)
            assert valid_bytes <= damaged, f"flip at {position}"
            assert isinstance(tail_error, DurabilityError)
            assert tail_error.offset == valid_bytes
            prefix = [payload for payload, _ in loaded]
            assert prefix == [payload for payload, _ in clean][:len(prefix)]

    def test_garbage_tail_names_its_offset(self, tmp_path):
        path = tmp_path / "j"
        size = write_journal(path, sample_records(2))
        with open(path, "ab") as handle:
            handle.write(b"not a journal record at all\n")
        loaded, valid_bytes, tail_error = scan_journal(path)
        assert len(loaded) == 2
        assert valid_bytes == size
        assert tail_error is not None and tail_error.offset == size
        with pytest.raises(DurabilityError) as error:
            read_journal(path)
        assert error.value.offset == size

    def test_interleaved_garbage_stops_the_scan(self, tmp_path):
        # Damage *between* records: the suffix is unreachable even though
        # it contains well-formed frames — recovery must not resurrect
        # records beyond a hole it cannot vouch for.
        path = tmp_path / "j"
        records = sample_records(4)
        write_journal(path, records)
        data = path.read_bytes()
        clean, _, _ = scan_journal(path)
        second_offset = clean[1][1]
        third_offset = clean[2][1]
        spliced = (
            data[:second_offset] + b"XXXX\n" + data[third_offset:]
        )
        path.write_bytes(spliced)
        loaded, valid_bytes, tail_error = scan_journal(path)
        assert [payload for payload, _ in loaded] == records[:1]
        assert valid_bytes == second_offset
        assert tail_error is not None

    def test_declared_length_mismatch(self, tmp_path):
        path = tmp_path / "j"
        record = encode_record({"kind": "x", "v": 1})
        marker, length, crc, body = record.split(b" ", 3)
        lying = b" ".join([marker, str(int(length) + 2).encode(), crc, body])
        path.write_bytes(lying)
        _, valid_bytes, tail_error = scan_journal(path)
        assert valid_bytes == 0
        assert "payload bytes" in str(tail_error)


class TestCrashInjection:
    def test_injected_crash_tears_the_record_at_the_exact_byte(self, tmp_path):
        path = tmp_path / "j"
        records = sample_records()
        whole = b"".join(encode_record(r) for r in records)
        crash_at = len(whole) // 2
        writer = JournalWriter(path, crash_after_bytes=crash_at)
        with pytest.raises(InjectedCrash):
            for record in records:
                writer.append(record)
        assert path.stat().st_size == crash_at
        loaded, valid_bytes, tail_error = scan_journal(path)
        assert valid_bytes <= crash_at
        assert [payload for payload, _ in loaded] == records[:len(loaded)]

    def test_crashed_writer_stays_dead(self, tmp_path):
        writer = JournalWriter(tmp_path / "j", crash_after_bytes=1)
        with pytest.raises(InjectedCrash):
            writer.append({"kind": "x"})
        assert writer.closed
        with pytest.raises(InjectedCrash):
            writer.append({"kind": "y"})

    def test_truncate_to_drops_the_torn_tail(self, tmp_path):
        path = tmp_path / "j"
        write_journal(path, sample_records(3))
        data = path.read_bytes()
        clean, _, _ = scan_journal(path)
        keep = clean[2][1]  # keep exactly two records
        path.write_bytes(data[: keep + 5])  # plus a torn stub
        writer = JournalWriter(path, truncate_to=keep)
        writer.append({"kind": "resumed"})
        writer.close()
        loaded = read_journal(path)
        assert [payload["kind"] for payload, _ in loaded] == [
            "pop", "pop", "resumed",
        ]
