"""A guided tour of the paper's Sections 2–3, with live numbers.

Walks the four ideas in order, reproducing each figure's argument with the
actual library objects:

1. the information value formula and the intro's two-reports example;
2. Figure 1 — remote base tables vs. stale replicas;
3. Figure 2 — immediate vs. delayed execution;
4. Figure 4 — the scatter-and-gather search, step by step.

Run:  python examples/paper_walkthrough.py
"""

from __future__ import annotations

from repro.core import (
    DiscountRates,
    IVQPOptimizer,
    SearchDiagnostics,
    explain_choice,
    information_value,
)
from repro.experiments import build_fig4_world
from repro.federation import Catalog, StreamSyncSchedule, TableDef
from repro.federation.costmodel import CostModel, CostParameters
from repro.workload import DSSQuery


def section_2_information_values() -> None:
    print("=" * 72)
    print("Section 2 — information values")
    print("=" * 72)
    print(
        "The introduction's example: report 1 arrives after 5 minutes on\n"
        "data stamped 8 minutes ago; report 2 arrives after 2 minutes on\n"
        "data stamped 12 minutes ago.  Which is worth more?  It depends on\n"
        "the discount preferences:\n"
    )
    for label, rates in (
        ("freshness-sensitive (l_CL=0.01, l_SL=0.10)", DiscountRates(0.01, 0.10)),
        ("latency-sensitive  (l_CL=0.10, l_SL=0.01)", DiscountRates(0.10, 0.01)),
    ):
        report_1 = information_value(1.0, 5.0, 8.0 + 5.0, rates)
        report_2 = information_value(1.0, 2.0, 12.0 + 2.0, rates)
        winner = "report 1" if report_1 > report_2 else "report 2"
        print(f"  {label}: report1={report_1:.3f} report2={report_2:.3f}"
              f"  -> {winner} wins")
    print()


def figures_1_and_2_routing() -> None:
    print("=" * 72)
    print("Figures 1-2 — what the routing decision trades off")
    print("=" * 72)
    catalog = Catalog()
    for index, name in enumerate(("T1", "T2")):
        catalog.add_table(TableDef(name, site=index, row_count=10_000))
        catalog.add_replica(
            name, StreamSyncSchedule.periodic(24.0, offset=12.0 + 6.0 * index)
        )
    cost_model = CostModel(
        catalog,
        params=CostParameters(local_throughput=5_000.0,
                              remote_throughput=1_500.0),
    )
    query = DSSQuery(query_id=1, name="Q1", tables=("T1", "T2"))
    for label, rates in (
        ("freshness-hungry", DiscountRates(0.01, 0.20)),
        ("latency-hungry", DiscountRates(0.20, 0.01)),
    ):
        comparison = explain_choice(query, catalog, cost_model, rates, 34.0)
        print(f"\n{label} user (l_CL={rates.computational}, "
              f"l_SL={rates.synchronization}):")
        print(comparison.as_table().render())
    print()


def figure_4_scatter_gather() -> None:
    print("=" * 72)
    print("Figure 4 — the scatter-and-gather search")
    print("=" * 72)
    catalog, provider, query, rates = build_fig4_world()
    scatter = information_value(1.0, 10.0, 10.0, rates)
    print(f"Scatter: all four base tables -> CL = SL = 10, "
          f"IV = 0.9^10 x 0.9^10 = {scatter:.4f}")
    print(f"Bound: no plan with CL > 20 can win -> search ends by t = 31")

    diagnostics = SearchDiagnostics()
    optimizer = IVQPOptimizer(catalog, provider, rates)
    plan = optimizer.choose_plan(query, 11.0, diagnostics)
    print(f"\nGather walked {diagnostics.time_lines_visited} time lines, "
          f"evaluated {diagnostics.plans_evaluated} plans, tightened the "
          f"bound {diagnostics.bound_tightenings} times "
          f"(final bound t = {diagnostics.final_bound:.1f}).")
    print(f"Chosen: {plan.describe()}")
    print(f"That is {plan.information_value / scatter:.2f}x the scatter "
          "incumbent — the value of exploring delayed, mixed plans.")
    print()


def main() -> None:
    section_2_information_values()
    figures_1_and_2_routing()
    figure_4_scatter_gather()


if __name__ == "__main__":
    main()
