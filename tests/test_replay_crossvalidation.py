"""Cross-validation: the analytic MQO evaluator vs the discrete-event run.

The MQO evaluator replays schedules against per-server availability clocks;
the DES executes the same plans with real queueing.  The evaluator's model
is deliberately *conservative* (it holds all of a plan's servers from one
common begin instant, where the DES pipelines remote legs before local
assembly), so replaying an evaluator schedule in the DES must never come
out slower per query — and realized information values must never come out
lower.
"""

from __future__ import annotations

import pytest

from repro.baselines import ReplayRouter
from repro.core.value import DiscountRates
from repro.errors import PlanError
from repro.federation.catalog import Catalog, StreamSyncSchedule, TableDef
from repro.federation.costmodel import CostModel, CostParameters
from repro.federation.site import LOCAL_SITE_ID, Site
from repro.federation.sync import ReplicationManager
from repro.federation.system import FederatedSystem
from repro.mqo.scheduler import WorkloadScheduler
from repro.sim.scheduler import Simulator
from repro.workload.query import DSSQuery, Workload


def build_shared_world():
    """A catalog + cost model shared by the analytic and DES paths."""
    catalog = Catalog()
    for index in range(4):
        name = f"t{index}"
        catalog.add_table(TableDef(name, site=index % 2, row_count=4_000))
        catalog.add_replica(
            name,
            StreamSyncSchedule.periodic(6.0, offset=1.0 + index * 1.3),
        )
    cost_model = CostModel(
        catalog,
        params=CostParameters(local_throughput=2_000.0,
                              remote_throughput=800.0),
    )
    rates = DiscountRates.symmetric(0.1)
    return catalog, cost_model, rates


def build_burst() -> Workload:
    workload = Workload()
    for index in range(5):
        workload.add(
            DSSQuery(
                query_id=index + 1, name=f"q{index + 1}",
                tables=(f"t{index % 4}", f"t{(index + 1) % 4}"),
            ),
            arrival=2.0 + 0.3 * index,
        )
    return workload


def run_in_des(catalog, cost_model, rates, workload, assignments):
    """Execute recorded assignments inside a fresh simulation."""
    sim = Simulator()
    sites = {LOCAL_SITE_ID: Site(sim, LOCAL_SITE_ID, capacity=1)}
    for site_id in {table.site for table in
                    (catalog.table(n) for n in catalog.table_names)}:
        sites[site_id] = Site(sim, site_id, capacity=1)
    system = FederatedSystem(
        sim=sim,
        catalog=catalog,
        sites=sites,
        cost_model=cost_model,
        router=ReplayRouter.from_assignments(assignments),
        replication=ReplicationManager(sim, catalog),
        rates=rates,
    )
    system.submit_workload(workload)
    system.run()
    return {outcome.query.query_id: outcome for outcome in system.outcomes}


class TestCrossValidation:
    def test_des_never_slower_than_analytic_model(self):
        catalog, cost_model, rates, = build_shared_world()
        workload = build_burst()
        scheduler = WorkloadScheduler(catalog, cost_model, rates)
        analytic = scheduler.fifo(workload)

        outcomes = run_in_des(
            catalog, cost_model, rates, workload, analytic.assignments
        )
        for assignment in analytic.assignments:
            outcome = outcomes[assignment.query.query_id]
            assert outcome.computational_latency <= (
                assignment.computational_latency + 1e-6
            ), assignment.query.name
            assert outcome.information_value >= (
                assignment.information_value - 1e-6
            ), assignment.query.name

    def test_uncontended_query_matches_exactly(self):
        catalog, cost_model, rates = build_shared_world()
        workload = Workload()
        workload.add(
            DSSQuery(query_id=1, name="solo", tables=("t0", "t1")),
            arrival=10.0,
        )
        scheduler = WorkloadScheduler(catalog, cost_model, rates)
        analytic = scheduler.fifo(workload)
        outcomes = run_in_des(
            catalog, cost_model, rates, workload, analytic.assignments
        )
        assignment = analytic.assignments[0]
        outcome = outcomes[1]
        assert outcome.computational_latency == pytest.approx(
            assignment.computational_latency, abs=1e-9
        )
        assert outcome.information_value == pytest.approx(
            assignment.information_value, abs=1e-9
        )


class TestReplayRouter:
    def test_missing_plan_rejected(self, fig4_world):
        _catalog, _provider, query, _rates = fig4_world
        router = ReplayRouter({})
        with pytest.raises(PlanError):
            router.choose_plan(query, 0.0)

    def test_plan_for_wrong_query_object_rejected(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        from repro.core.enumeration import make_plan

        plan = make_plan(
            query, catalog, provider, rates, 11.0, 11.0,
            frozenset(query.tables),
        )
        impostor = DSSQuery(query_id=1, name="fig4",
                            tables=("T1", "T2", "T3", "T4"))
        with pytest.raises(PlanError):
            ReplayRouter({impostor: plan})

    def test_late_submission_rejected(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        from repro.core.enumeration import make_plan

        plan = make_plan(
            query, catalog, provider, rates, 11.0, 11.0,
            frozenset(query.tables),
        )
        router = ReplayRouter({query: plan})
        assert router.choose_plan(query, 11.0) is plan
        with pytest.raises(PlanError):
            router.choose_plan(query, 50.0)
