"""``python -m repro`` — regenerate the paper's figures."""

import sys

from repro.experiments.cli import main

if __name__ == "__main__":
    sys.exit(main())
