"""The sim/wall clock seam: one event-clock protocol, two time sources.

The online scheduler (:mod:`repro.mqo.online`) is a state machine over a
stream of timed events — arrivals, window closes, completions.  Nothing in
its admission/shed/window/dispatch logic cares *where* time comes from,
only that events pop in deadline order with FIFO ties.  This module makes
that seam explicit:

* :class:`Clock` — the protocol: schedule events (``push``), inspect the
  frontier (``peek_time`` / truthiness), read the current stream time
  (``now``) and a monotonic wall-seconds reading (``perf_seconds``, used
  for re-optimization accounting so sim and wall runs book it exactly
  once).
* :class:`SimClock` — wraps the deterministic
  :class:`~repro.sim.timeline.Timeline` heap; ``pop`` advances simulated
  time instantly.  Replaying a recorded arrival trace through a
  ``SimClock`` reproduces a wall run's decision sequence exactly
  (``tests/test_clock_equivalence.py`` proves it).
* :class:`WallClock` — the same heap bound to the process's monotonic
  timer: ``wait_pop`` (a coroutine) sleeps until the earliest deadline is
  *really* due, and a ``push`` from another task (an HTTP submission)
  wakes the sleeper early.  One stream minute equals
  ``seconds_per_minute`` wall seconds, so services and benches can run
  the paper's minutes-scale band compressed onto real hardware.

Time is in **stream minutes** everywhere (the unit the paper's 2–30 minute
near-real-time band is stated in); only ``perf_seconds`` speaks seconds.
"""

from __future__ import annotations

import asyncio
import typing
from time import monotonic, perf_counter
from typing import Any

from repro.errors import SimulationError
from repro.sim.timeline import Timeline

__all__ = ["Clock", "SimClock", "WallClock"]


@typing.runtime_checkable
class Clock(typing.Protocol):
    """What the online scheduling loop needs from a time source."""

    @property
    def now(self) -> float:
        """Current stream time (minutes)."""
        ...  # pragma: no cover - protocol

    def push(self, time: float, tag: str, payload: Any = None) -> None:
        """Schedule an event at stream time ``time``."""
        ...  # pragma: no cover - protocol

    def peek_time(self) -> float:
        """Deadline of the earliest pending event (IndexError if empty)."""
        ...  # pragma: no cover - protocol

    def perf_seconds(self) -> float:
        """A monotonic wall-seconds reading (re-optimization accounting)."""
        ...  # pragma: no cover - protocol

    def __bool__(self) -> bool: ...  # pragma: no cover - protocol

    def __len__(self) -> int: ...  # pragma: no cover - protocol


class SimClock:
    """Simulated time: a :class:`Timeline` heap popped without waiting.

    ``now`` is the time of the latest pop — the online loop's logical
    "current instant".  ``perf_seconds`` reads ``perf_counter`` so that
    re-optimization cost is measured in real seconds *outside* the
    simulated stream, exactly as the pre-refactor scheduler did.
    """

    __slots__ = ("_timeline",)

    def __init__(self, timeline: Timeline | None = None) -> None:
        self._timeline = timeline if timeline is not None else Timeline()

    @property
    def now(self) -> float:
        return self._timeline.now

    def push(self, time: float, tag: str, payload: Any = None) -> None:
        self._timeline.push(time, tag, payload)

    def pop(self) -> tuple[float, str, Any]:
        """Advance to and return the earliest event."""
        return self._timeline.pop()

    def peek_time(self) -> float:
        return self._timeline.peek_time()

    def perf_seconds(self) -> float:
        return perf_counter()

    def __len__(self) -> int:
        return len(self._timeline)

    def __bool__(self) -> bool:
        return bool(self._timeline)


class WallClock:
    """Real time: the same event heap bound to the monotonic timer.

    Stream minutes map onto wall seconds through ``seconds_per_minute``
    (e.g. ``0.01`` compresses one stream minute into 10 ms — useful for
    benches and smoke tests; ``60.0`` is honest real time).  ``now`` is
    continuous: it reads the monotonic timer, so two submissions a few
    microseconds apart get distinct, ordered stream stamps.

    ``wait_pop`` is the asyncio driver primitive: it sleeps until the
    earliest deadline is due (waking early when a concurrent ``push``
    schedules something sooner), pops it, and returns it.  After
    :meth:`stop`, ``wait_pop`` drains remaining events and then returns
    ``None`` instead of sleeping forever on an empty heap.

    ``perf_seconds`` reads the *same* monotonic base that drives ``now``,
    so wall-run re-optimization time is a slice of stream time — booked
    exactly once, never both as "reopt" and again as extra latency.
    """

    __slots__ = ("_timeline", "seconds_per_minute", "_epoch", "_wake", "_stopped")

    def __init__(
        self,
        seconds_per_minute: float = 1.0,
        start_at: float = 0.0,
        timeline: Timeline | None = None,
    ) -> None:
        if seconds_per_minute <= 0:
            raise SimulationError(
                f"seconds_per_minute must be > 0, got {seconds_per_minute}"
            )
        if start_at < 0:
            raise SimulationError(f"start_at must be >= 0, got {start_at}")
        self._timeline = timeline if timeline is not None else Timeline()
        self.seconds_per_minute = seconds_per_minute
        # ``start_at`` re-anchors stream time: a resumed service's clock
        # must continue from the crashed run's frontier, not restart at
        # zero (events restored behind ``now`` would be scheduled in the
        # past and pop in a burst, which is exactly what we want — the
        # backlog is overdue).
        self._epoch = monotonic() - start_at * seconds_per_minute
        self._wake = asyncio.Event()
        self._stopped = False

    @property
    def now(self) -> float:
        """Stream minutes elapsed since the clock's epoch."""
        return (monotonic() - self._epoch) / self.seconds_per_minute

    def push(self, time: float, tag: str, payload: Any = None) -> None:
        self._timeline.push(time, tag, payload)
        self._wake.set()

    def peek_time(self) -> float:
        return self._timeline.peek_time()

    def perf_seconds(self) -> float:
        return monotonic()

    def stop(self) -> None:
        """Drain mode: ``wait_pop`` stops sleeping and returns ``None`` empty.

        After ``stop`` the remaining events pop *immediately* in heap
        order (their scheduled times are returned unchanged, so logical
        time stays intact) — a shutting-down service should not wait out
        its last rolling-window deadline in real time.
        """
        self._stopped = True
        self._wake.set()

    async def wait_pop(self) -> tuple[float, str, Any] | None:
        """Sleep until the earliest event is due, pop and return it.

        Returns ``None`` when the clock was :meth:`stop`-ped and no
        events remain.  A concurrent ``push`` (e.g. an HTTP submission)
        interrupts the sleep so a newly scheduled earlier event is
        honored.
        """
        while True:
            if self._stopped:
                return self._timeline.pop() if self._timeline else None
            if self._timeline:
                due = self._epoch + self.peek_time() * self.seconds_per_minute
                delay = due - monotonic()
                if delay <= 0:
                    return self._timeline.pop()
                self._wake.clear()
                try:
                    await asyncio.wait_for(self._wake.wait(), timeout=delay)
                except asyncio.TimeoutError:
                    continue  # the deadline arrived
            else:
                if self._stopped:
                    return None
                self._wake.clear()
                if self._timeline:  # pushed between the check and the clear
                    continue
                await self._wake.wait()

    def __len__(self) -> int:
        return len(self._timeline)

    def __bool__(self) -> bool:
        return bool(self._timeline)
