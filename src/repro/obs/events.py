"""Typed trace-event kinds for the observability subsystem.

Every producer in the runtime emits :class:`~repro.sim.trace.TraceRecord`\\ s
with one of these ``kind`` strings, so consumers (the span builder, the
exporters, the :class:`~repro.obs.checker.TraceChecker`) can pattern-match
without scraping free-form text.  Query-lifecycle events always carry a
``qid`` detail key — query *names* repeat across rounds of a stream, ids
never do.

Lifecycle of one query (happy path)::

    submit → plan → exec.start → leg.start/leg.granted/leg.done (per site)
           → remote.done → local.granted → local.done → complete

with ``ledger`` carrying the full IV audit record at completion time.
"""

from __future__ import annotations

__all__ = [
    "SUBMIT", "PLAN", "EXEC_START",
    "LEG_START", "LEG_BLOCKED", "LEG_GRANTED", "LEG_RETRY", "LEG_DONE",
    "LEG_EXHAUSTED", "FAILOVER", "REMOTE_DONE",
    "LOCAL_GRANTED", "LOCAL_DONE", "COMPLETE", "FAILED", "LEDGER",
    "SYNC_APPLY", "SYNC_SKIP", "SYNC_DELAY",
    "FAULT_DOWN", "FAULT_UP",
    "MQO_GROUPS", "MQO_GA", "MQO_ORDER",
    "MQO_WINDOW", "MQO_ADMIT", "MQO_SHED",
    "ALERT_OPEN", "ALERT_CLOSE",
    "CHECKPOINT", "RESUME",
    "QUERY_LIFECYCLE_KINDS", "LEG_KINDS", "ALERT_KINDS", "DURABLE_KINDS",
]

# -- query lifecycle (subject = query name, detail carries qid) ------------
SUBMIT = "submit"              #: query entered the system
PLAN = "plan"                  #: router chose a plan
EXEC_START = "exec.start"      #: executor began (after any planned delay)
LEG_START = "leg.start"        #: one remote leg asked its site for service
LEG_BLOCKED = "leg.blocked"    #: leg found its site down, waiting out outage
LEG_GRANTED = "leg.granted"    #: remote server granted the leg
LEG_RETRY = "leg.retry"        #: leg withdrew/lost work and will retry
LEG_DONE = "leg.done"          #: leg finished; detail carries freshness
LEG_EXHAUSTED = "leg.exhausted"  #: leg gave up its site (retries spent)
FAILOVER = "failover"          #: lost tables re-planned onto replicas
REMOTE_DONE = "remote.done"    #: all remote legs settled
LOCAL_GRANTED = "local.granted"  #: local federation server granted
LOCAL_DONE = "local.done"      #: local assembly finished
COMPLETE = "complete"          #: result received; detail carries cl/sl/iv
FAILED = "failed"              #: query produced no result (IV 0)
LEDGER = "ledger"              #: IV audit ledger entry (full decomposition)

# -- replication (subject = replica/table name) ----------------------------
SYNC_APPLY = "sync"            #: a synchronization landed
SYNC_SKIP = "sync.skip"        #: a scheduled sync was skipped (fault)
SYNC_DELAY = "sync.delay"      #: a scheduled sync slipped (fault)

# -- fault injection (subject = "site:<id>") -------------------------------
FAULT_DOWN = "fault.down"      #: site outage window opened
FAULT_UP = "fault.up"          #: site outage window closed

# -- MQO scheduling (subject = "workload" / "group:<n>") -------------------
MQO_GROUPS = "mqo.groups"      #: conflict groups formed
MQO_GA = "mqo.ga"              #: one group's GA ordering finished
MQO_ORDER = "mqo.order"        #: final realized permutation

# -- online MQO (subject = "window:<n>" / query name) ----------------------
MQO_WINDOW = "mqo.window"      #: one re-optimization pass (detail: index/order)
MQO_ADMIT = "mqo.admit"        #: query admitted to the pending queue
MQO_SHED = "mqo.shed"          #: query shed by admission control (IV floor)

# -- durability (subject = "journal") --------------------------------------
CHECKPOINT = "durable.checkpoint"  #: a session snapshot was journaled (detail: pops)
RESUME = "durable.resume"          #: a crashed run was recovered (detail: pops)

# -- SLO monitoring (subject = "slo:<rule>") -------------------------------
ALERT_OPEN = "alert.open"      #: an SLO rule entered breach (detail: value/threshold/since)
ALERT_CLOSE = "alert.close"    #: the breach cleared (detail: value/opened_at)

#: Kinds that participate in a per-query span tree.
QUERY_LIFECYCLE_KINDS = frozenset({
    SUBMIT, PLAN, EXEC_START, LEG_START, LEG_BLOCKED, LEG_GRANTED,
    LEG_RETRY, LEG_DONE, LEG_EXHAUSTED, FAILOVER, REMOTE_DONE,
    LOCAL_GRANTED, LOCAL_DONE, COMPLETE, FAILED, LEDGER,
})

#: Kinds emitted by remote legs (detail carries ``site``).
LEG_KINDS = frozenset({
    LEG_START, LEG_BLOCKED, LEG_GRANTED, LEG_RETRY, LEG_DONE, LEG_EXHAUSTED,
})

#: Kinds emitted by the SLO monitor.
ALERT_KINDS = frozenset({ALERT_OPEN, ALERT_CLOSE})

#: Kinds emitted by the durability layer (checkpoint/resume boundaries).
DURABLE_KINDS = frozenset({CHECKPOINT, RESUME})
