"""Unit tests: the expression tree and its operator sugar."""

from __future__ import annotations

import pytest

from repro.engine.expr import And, Col, Compare, Const, Not, Or
from repro.errors import EngineError

ROW = {"o.price": 10.0, "o.qty": 3, "c.name": "acme", "o.null_col": None}


class TestCol:
    def test_requires_qualified_name(self):
        with pytest.raises(EngineError):
            Col("price")

    def test_evaluates_from_namespace(self):
        assert Col("o.price").evaluate(ROW) == 10.0

    def test_missing_column_raises(self):
        with pytest.raises(EngineError):
            Col("o.missing").evaluate(ROW)

    def test_columns_set(self):
        assert Col("o.price").columns() == {"o.price"}


class TestComparisons:
    def test_eq_builds_compare(self):
        expr = Col("o.qty") == Const(3)
        assert isinstance(expr, Compare)
        assert expr.evaluate(ROW) is True

    def test_all_operators(self):
        assert (Col("o.price") > Const(5.0)).evaluate(ROW)
        assert (Col("o.price") >= Const(10.0)).evaluate(ROW)
        assert (Col("o.price") < Const(11.0)).evaluate(ROW)
        assert (Col("o.price") <= Const(10.0)).evaluate(ROW)
        assert (Col("o.qty") != Const(4)).evaluate(ROW)

    def test_plain_values_are_wrapped(self):
        expr = Col("o.qty") == 3
        assert expr.evaluate(ROW) is True

    def test_null_comparisons_are_false(self):
        assert (Col("o.null_col") == Const(None)).evaluate(ROW) is False
        assert (Col("o.null_col") < Const(5)).evaluate(ROW) is False

    def test_unknown_operator_rejected(self):
        with pytest.raises(EngineError):
            Compare("~", Col("o.qty"), Const(1))

    def test_is_equi_join_detection(self):
        join = Compare("==", Col("o.custkey"), Col("c.custkey"))
        assert join.is_equi_join
        same_table = Compare("==", Col("o.a"), Col("o.b"))
        assert not same_table.is_equi_join
        filter_expr = Compare("==", Col("o.a"), Const(1))
        assert not filter_expr.is_equi_join


class TestArithmetic:
    def test_basic_math(self):
        assert (Col("o.price") * Const(2.0)).evaluate(ROW) == 20.0
        assert (Col("o.price") + Col("o.qty")).evaluate(ROW) == 13.0
        assert (Col("o.price") - Const(1.0)).evaluate(ROW) == 9.0
        assert (Col("o.price") / Const(4.0)).evaluate(ROW) == 2.5

    def test_null_propagates(self):
        assert (Col("o.null_col") * Const(2)).evaluate(ROW) is None

    def test_revenue_idiom(self):
        revenue = Col("o.price") * (Const(1.0) - Const(0.1))
        assert revenue.evaluate(ROW) == pytest.approx(9.0)


class TestBooleanCombinators:
    def test_and_or_not(self):
        yes = Col("o.qty") == 3
        no = Col("o.qty") == 4
        assert And(yes, yes).evaluate(ROW)
        assert not And(yes, no).evaluate(ROW)
        assert Or(no, yes).evaluate(ROW)
        assert not Or(no, no).evaluate(ROW)
        assert Not(no).evaluate(ROW)

    def test_operator_sugar(self):
        yes = Col("o.qty") == 3
        no = Col("o.qty") == 4
        assert (yes & yes).evaluate(ROW)
        assert (yes | no).evaluate(ROW)
        assert (~no).evaluate(ROW)

    def test_and_flattens_conjuncts(self):
        a = Col("o.qty") == 3
        b = Col("o.price") > 1.0
        c = Col("c.name") == "acme"
        nested = And(And(a, b), c)
        assert len(nested.conjuncts()) == 3

    def test_columns_union(self):
        expr = (Col("o.qty") == 3) & (Col("c.name") == "acme")
        assert expr.columns() == {"o.qty", "c.name"}

    def test_boolean_combinator_rejects_non_expression(self):
        with pytest.raises(EngineError):
            (Col("o.qty") == 3) & 5  # type: ignore[operator]
