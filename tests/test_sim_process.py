"""Unit tests: generator-based simulation processes."""

from __future__ import annotations

import pytest

from repro.errors import ProcessError
from repro.sim.process import Interrupt
from repro.sim.scheduler import Simulator


class TestBasicExecution:
    def test_process_runs_and_advances_time(self, sim):
        trace = []

        def worker(sim):
            trace.append(("start", sim.now))
            yield sim.timeout(4.0)
            trace.append(("end", sim.now))

        sim.process(worker(sim))
        sim.run()
        assert trace == [("start", 0.0), ("end", 4.0)]

    def test_process_return_value_becomes_event_value(self, sim):
        def worker(sim):
            yield sim.timeout(1.0)
            return "result"

        process = sim.process(worker(sim))
        sim.run()
        assert process.value == "result"

    def test_timeout_value_is_sent_into_generator(self, sim):
        got = []

        def worker(sim):
            value = yield sim.timeout(1.0, value="payload")
            got.append(value)

        sim.process(worker(sim))
        sim.run()
        assert got == ["payload"]

    def test_process_waiting_on_process_joins(self, sim):
        def child(sim):
            yield sim.timeout(3.0)
            return 99

        def parent(sim):
            value = yield sim.process(child(sim))
            return value + 1

        parent_proc = sim.process(parent(sim))
        sim.run()
        assert parent_proc.value == 100

    def test_waiting_on_already_triggered_event(self, sim):
        def worker(sim):
            event = sim.event()
            event.succeed("early")
            value = yield event
            return value

        process = sim.process(worker(sim))
        sim.run()
        assert process.value == "early"

    def test_requires_generator(self, sim):
        with pytest.raises(ProcessError):
            sim.process(lambda: None)  # type: ignore[arg-type]

    def test_is_alive_tracks_completion(self, sim):
        def worker(sim):
            yield sim.timeout(1.0)

        process = sim.process(worker(sim))
        assert process.is_alive
        sim.run()
        assert not process.is_alive


class TestFailures:
    def test_yielding_non_event_fails_process(self, sim):
        def worker(sim):
            yield 42  # not an Event

        process = sim.process(worker(sim))
        process.defuse()
        sim.run()
        assert not process.ok
        assert isinstance(process.exception, ProcessError)

    def test_yielding_foreign_event_fails_process(self, sim):
        other = Simulator()

        def worker(sim):
            yield other.timeout(1.0)

        process = sim.process(worker(sim))
        process.defuse()
        sim.run()
        assert isinstance(process.exception, ProcessError)

    def test_exception_inside_process_fails_it(self, sim):
        def worker(sim):
            yield sim.timeout(1.0)
            raise ValueError("inside")

        process = sim.process(worker(sim))
        process.defuse()
        sim.run()
        assert isinstance(process.exception, ValueError)

    def test_failed_event_is_thrown_into_waiter(self, sim):
        caught = []

        def worker(sim):
            event = sim.event()
            sim.call_at(1.0, lambda: event.fail(RuntimeError("pushed")))
            try:
                yield event
            except RuntimeError as exc:
                caught.append(str(exc))

        sim.process(worker(sim))
        sim.run()
        assert caught == ["pushed"]


class TestInterrupts:
    def test_interrupt_wakes_sleeping_process(self, sim):
        woken = []

        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                woken.append((sim.now, interrupt.cause))

        process = sim.process(sleeper(sim))
        sim.call_at(2.0, lambda: process.interrupt("reason"))
        sim.run()
        assert woken == [(2.0, "reason")]

    def test_interrupting_finished_process_raises(self, sim):
        def quick(sim):
            yield sim.timeout(1.0)

        process = sim.process(quick(sim))
        sim.run()
        with pytest.raises(ProcessError):
            process.interrupt()

    def test_process_can_continue_after_interrupt(self, sim):
        trace = []

        def resilient(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                trace.append("interrupted")
            yield sim.timeout(5.0)
            trace.append(sim.now)

        process = sim.process(resilient(sim))
        sim.call_at(1.0, lambda: process.interrupt())
        sim.run()
        assert trace == ["interrupted", 6.0]
