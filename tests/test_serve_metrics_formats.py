"""``/metrics`` content negotiation + the Prometheus text exposition.

Unit-level: :func:`to_prometheus` over both snapshot shapes the repo
produces.  End-to-end: the HTTP server's ``?format=`` negotiation —
JSON by default, Prometheus 0.0.4 on request, and a 400 naming the
supported formats on anything else.
"""

from __future__ import annotations

import asyncio

from repro.obs.live import LiveRegistry, TableSyncState
from repro.obs.metrics import MetricsRegistry, to_prometheus
from repro.serve import HTTPServer, QueryService, ServeConfig, http_request


def config(**overrides) -> ServeConfig:
    base = dict(
        seconds_per_minute=0.01, num_templates=6, ga_generations=5, seed=11,
    )
    base.update(overrides)
    return ServeConfig(**base)


async def _with_server(cfg, body):
    service = QueryService(cfg)
    server = HTTPServer(service, port=0)
    await server.start()
    try:
        host, port = server.address
        await body(service, host, port)
    finally:
        await server.stop()
    return service


class TestPrometheusExposition:
    def test_counters_and_gauges_render_with_types(self):
        registry = MetricsRegistry()
        registry.counter("query.completed").inc(3)
        registry.gauge("sync.staleness.mean").set(1.5)
        text = to_prometheus(registry.snapshot())
        assert "# TYPE repro_query_completed counter" in text
        assert "repro_query_completed 3" in text
        assert "# TYPE repro_sync_staleness_mean gauge" in text
        assert "repro_sync_staleness_mean 1.5" in text
        assert text.endswith("\n")

    def test_histogram_renders_cumulative_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("query.cl.hist", bounds=(1.0, 2.0))
        for value in (0.5, 1.5, 1.7, 5.0):
            hist.observe(value)
        text = to_prometheus(registry.snapshot())
        assert "# TYPE repro_query_cl_hist histogram" in text
        assert 'repro_query_cl_hist_bucket{le="1"} 1' in text
        # Cumulative: the le="2" bucket includes everything below it.
        assert 'repro_query_cl_hist_bucket{le="2"} 3' in text
        assert 'repro_query_cl_hist_bucket{le="+Inf"} 4' in text
        assert "repro_query_cl_hist_count 4" in text
        assert "repro_query_cl_hist_sum 8.7" in text

    def test_live_snapshot_rates_quantiles_and_table_labels(self):
        registry = LiveRegistry()
        table = TableSyncState(half_life=10.0)
        table.apply(now=4.0, at=3.0, gap=1.0)
        registry._tables["orders"] = table
        registry.now = 5.0
        text = to_prometheus(registry.snapshot())
        assert "# TYPE repro_time gauge" in text
        assert "# TYPE repro_query_arrivals_ewma gauge" in text
        assert "# TYPE repro_query_cl_p95 gauge" in text
        assert 'repro_sync_table_staleness{table="orders"} 2' in text

    def test_custom_prefix_and_name_sanitization(self):
        registry = MetricsRegistry()
        registry.counter("mqo.shed").inc()
        text = to_prometheus(registry.snapshot(), prefix="dss")
        assert "dss_mqo_shed 1" in text
        assert "." not in text.split()[-2]


class TestMetricsContentNegotiation:
    def test_default_and_explicit_json(self):
        async def body(service, host, port):
            status, payload = await http_request(host, port, "GET", "/metrics")
            assert status == 200
            assert "counters" in payload
            status, explicit = await http_request(
                host, port, "GET", "/metrics?format=json"
            )
            assert status == 200
            assert explicit.keys() == payload.keys()

        asyncio.run(_with_server(config(), body))

    def test_prometheus_format_is_plain_text_with_types(self):
        async def body(service, host, port):
            await http_request(host, port, "POST", "/submit", {"template": 0})
            status, text = await http_request(
                host, port, "GET", "/metrics?format=prometheus"
            )
            assert status == 200
            assert isinstance(text, str)  # text/plain, not parsed JSON
            assert "# TYPE repro_query_submitted counter" in text
            assert "# TYPE repro_query_cl_hist histogram" in text

        asyncio.run(_with_server(config(), body))

    def test_unknown_format_is_a_400_naming_supported_formats(self):
        async def body(service, host, port):
            status, payload = await http_request(
                host, port, "GET", "/metrics?format=xml"
            )
            assert status == 400
            assert payload["supported"] == list(HTTPServer.METRICS_FORMATS)
            assert "xml" in payload["error"]

        asyncio.run(_with_server(config(), body))

    def test_other_query_params_are_ignored(self):
        async def body(service, host, port):
            status, payload = await http_request(
                host, port, "GET", "/metrics?verbose=1"
            )
            assert status == 200
            assert "counters" in payload

        asyncio.run(_with_server(config(), body))
