"""Workload serialization (JSON round-trip).

Saving a workload — queries, arrival times, business values, discount
preferences — makes experiment inputs shareable and replayable.  Engine
definitions are not serialized structurally; TPC-H queries carry a
``logical_ref`` (e.g. ``"tpch:Q3"``) that is re-resolved on load, and other
queries round-trip through their explicit ``base_work``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.value import DiscountRates
from repro.errors import WorkloadError
from repro.workload.query import DSSQuery, Workload
from repro.workload.tpch_queries import TPCH_FOOTPRINTS, _build_logical

__all__ = [
    "query_to_dict",
    "query_from_dict",
    "workload_to_dict",
    "workload_from_dict",
    "save_workload",
    "load_workload",
]

#: Format version written into every document.
FORMAT_VERSION = 1


def query_to_dict(query: DSSQuery) -> dict:
    """One query as a JSON-safe dict."""
    payload: dict = {
        "query_id": query.query_id,
        "name": query.name,
        "tables": list(query.tables),
        "business_value": query.business_value,
    }
    if query.rates is not None:
        payload["rates"] = {
            "computational": query.rates.computational,
            "synchronization": query.rates.synchronization,
        }
    if query.base_work is not None:
        payload["base_work"] = query.base_work
    if query.logical is not None:
        if query.name not in TPCH_FOOTPRINTS:
            # Engine plans have no structural serialization; dropping the
            # logical silently would make load_workload return a query
            # that costs differently than the one saved.
            raise WorkloadError(
                f"query {query.name!r} carries a logical plan that is not "
                f"a TPC-H reference and cannot be serialized"
            )
        payload["logical_ref"] = f"tpch:{query.name}"
    return payload


def query_from_dict(payload: dict) -> DSSQuery:
    """Rebuild one query from :func:`query_to_dict` output."""
    try:
        rates = None
        if "rates" in payload:
            rates = DiscountRates(
                computational=payload["rates"]["computational"],
                synchronization=payload["rates"]["synchronization"],
            )
        logical = None
        ref = payload.get("logical_ref")
        if ref is not None:
            scheme, _, name = ref.partition(":")
            if scheme != "tpch" or name not in TPCH_FOOTPRINTS:
                raise WorkloadError(f"unknown logical_ref {ref!r}")
            logical = _build_logical(name)
        return DSSQuery(
            query_id=int(payload["query_id"]),
            name=str(payload["name"]),
            tables=tuple(payload["tables"]),
            business_value=float(payload.get("business_value", 1.0)),
            rates=rates,
            logical=logical,
            base_work=(
                float(payload["base_work"])
                if "base_work" in payload
                else None
            ),
        )
    except KeyError as missing:
        raise WorkloadError(f"query document missing field {missing}")


def workload_to_dict(workload: Workload) -> dict:
    """A whole workload as a JSON-safe dict."""
    return {
        "format_version": FORMAT_VERSION,
        "queries": [
            {
                **query_to_dict(query),
                "arrival": workload.arrival_of(query.query_id),
            }
            for query in workload.queries
        ],
    }


def workload_from_dict(payload: dict) -> Workload:
    """Rebuild a workload from :func:`workload_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise WorkloadError(
            f"unsupported workload format version {version!r} "
            f"(expected {FORMAT_VERSION})"
        )
    workload = Workload()
    for entry in payload.get("queries", []):
        query = query_from_dict(entry)
        workload.add(query, arrival=float(entry.get("arrival", 0.0)))
    return workload


def save_workload(workload: Workload, path: str | Path) -> None:
    """Write a workload to a JSON file."""
    Path(path).write_text(
        json.dumps(workload_to_dict(workload), indent=2) + "\n"
    )


def load_workload(path: str | Path) -> Workload:
    """Read a workload from a JSON file."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise WorkloadError(f"cannot load workload from {path}: {exc}")
    return workload_from_dict(payload)
