"""EXT2 — information value under load.

Asserts the capacity shapes: IV degrades (and CL grows) for the approaches
that route work through contended servers as arrivals accelerate, while the
Data Warehouse's cheap all-replica service stays nearly flat; IVQP keeps
its edge over Federation at every load level.
"""

from __future__ import annotations

from repro.experiments.config import TpchSetup
from repro.experiments.load import LoadConfig, run_load_sweep


def bench_config() -> LoadConfig:
    return LoadConfig(setup=TpchSetup(scale=0.001, seed=7), rounds=2)


def _series(table, approach, column):
    index = table.headers.index(column)
    return {
        row[0]: row[index] for row in table.rows if row[1] == approach
    }


def test_load_sweep(benchmark, show):
    table = benchmark.pedantic(
        lambda: run_load_sweep(bench_config()), rounds=1, iterations=1
    )
    show(table.render())

    config = bench_config()
    fastest = min(config.interarrival_means)
    slowest = max(config.interarrival_means)

    for approach in ("ivqp", "federation"):
        iv = _series(table, approach, "mean_iv")
        cl = _series(table, approach, "mean_cl")
        # Congestion hurts: saturating arrivals mean lower IV, higher CL.
        assert iv[fastest] < iv[slowest], approach
        assert cl[fastest] > cl[slowest], approach

    # The all-replica route barely notices (short local service times).
    warehouse_cl = _series(table, "warehouse", "mean_cl")
    assert warehouse_cl[fastest] < 2.5 * warehouse_cl[slowest]

    # IVQP keeps its edge over Federation at every load level ...
    ivqp_iv = _series(table, "ivqp", "mean_iv")
    federation_iv = _series(table, "federation", "mean_iv")
    for mean in config.interarrival_means:
        assert ivqp_iv[mean] >= federation_iv[mean] - 1e-6
    # ... but per-query optimization is contention-blind: at saturation the
    # warehouse's trivial plans can overtake it (the gap MQO closes).
    warehouse_iv = _series(table, "warehouse", "mean_iv")
    assert ivqp_iv[slowest] > warehouse_iv[slowest]
