"""Durable scheduler state: journaled checkpoint/resume, proven by replay.

The paper's premise is *continuous* near-real-time decision support; this
package makes the PR 6 serving runtime survive process death without
perturbing a single scheduling decision.  Three layers:

* :mod:`repro.durable.journal` — the storage discipline: an append-only
  file of length-prefixed, CRC-checked JSON records, fsync'd on a
  cadence, with byte-exact torn-write detection and a crash injector.
* :mod:`repro.durable.recovery` — the schema (arrivals, pops, decisions,
  windows, ledgers, snapshots) and the recovery algorithm: restore the
  last valid snapshot, replay the journal tail literally, and verify
  every journaled decision against the replayed one.
* :mod:`repro.durable.harness` — the proof: kill a journaled run at any
  byte offset, resume it, and compare decision log + IV ledger bit-equal
  against an uninterrupted run.

``repro.serve`` wires the same records under its wall-clock loop, so a
live service resumes exactly where it crashed (``serve --journal DIR
--resume``).
"""

from repro.durable.harness import (
    JournaledRun,
    crash_and_resume,
    journaled_run,
    resume_run,
    runs_equivalent,
)
from repro.durable.journal import (
    SCHEMA_VERSION,
    InjectedCrash,
    JournalWriter,
    encode_record,
    read_journal,
    scan_journal,
)
from repro.durable.recovery import (
    RecoveredRun,
    recover,
    reconcile,
    verify_journal,
)

__all__ = [
    "SCHEMA_VERSION",
    "InjectedCrash",
    "JournalWriter",
    "encode_record",
    "scan_journal",
    "read_journal",
    "RecoveredRun",
    "recover",
    "reconcile",
    "verify_journal",
    "JournaledRun",
    "journaled_run",
    "resume_run",
    "crash_and_resume",
    "runs_equivalent",
]
