"""Unit tests: the benchmark regression gate."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigError
from repro.experiments.bench_gate import (
    DEFAULT_WALL_TOLERANCE,
    GateResult,
    Regression,
    classify,
    compare,
    flatten_metrics,
    key_mismatch,
    render_gate,
    run_gate,
)


class TestFlatten:
    def test_nested_dicts_and_lists(self):
        data = {
            "fast": {"wall_seconds": 0.2, "label": "ignored"},
            "cells": [{"mean_iv": 1.5}, {"mean_iv": 2.5}],
            "flag": True,
            "count": 7,
        }
        flat = flatten_metrics(data)
        assert flat == {
            "fast.wall_seconds": 0.2,
            "cells.0.mean_iv": 1.5,
            "cells.1.mean_iv": 2.5,
            "count": 7.0,
        }

    def test_booleans_are_not_metrics(self):
        assert flatten_metrics({"ok": True, "n": 1}) == {"n": 1.0}


class TestClassify:
    @pytest.mark.parametrize("path", [
        "fast.wall_seconds",
        "online_overhead.wall_seconds",
        "batch_wall_seconds",
        "reopt_seconds",
        "online_overhead.mean_reopt_ms",
    ])
    def test_wall_family(self, path):
        assert classify(path) == "wall"

    @pytest.mark.parametrize("path", [
        "fast.best_fitness",
        "cells.0.mean_iv",
        "total_iv.online",
        "total_iv.fifo",
    ])
    def test_iv_family(self, path):
        assert classify(path) == "iv"

    @pytest.mark.parametrize("path", [
        "schedules.steady.queries_per_sec",
        "schedules.steady.group_formation.ranges_per_sec",
    ])
    def test_throughput_family(self, path):
        assert classify(path) == "throughput"

    @pytest.mark.parametrize("path", [
        "schedules.steady.peak_rss_mb",
        "worker_rss_mb",
    ])
    def test_mem_family(self, path):
        assert classify(path) == "mem"

    @pytest.mark.parametrize("path", [
        "fast.realize_calls",
        "speedup",
        "cells.0.completed",
        "queries",
    ])
    def test_counters_are_not_gated(self, path):
        assert classify(path) is None


class TestCompare:
    baseline = {
        "fast": {"wall_seconds": 1.0, "best_fitness": 3.0, "calls": 10},
    }

    def test_synthetic_2x_slowdown_fails_at_tight_tolerance(self):
        # The gate's core promise: a doubled wall clock is caught when the
        # tolerance is tighter than the slowdown.
        current = {"fast": {"wall_seconds": 2.0, "best_fitness": 3.0}}
        regressions = compare(
            "mqo", self.baseline, current, wall_tolerance=1.5
        )
        assert [r.metric for r in regressions] == ["fast.wall_seconds"]
        assert regressions[0].kind == "wall"
        assert "slower" in str(regressions[0])

    def test_slowdown_within_tolerance_passes(self):
        current = {"fast": {"wall_seconds": 2.0, "best_fitness": 3.0}}
        assert compare("mqo", self.baseline, current, wall_tolerance=2.5) == []

    def test_iv_drop_fails_even_when_tiny(self):
        current = {"fast": {"wall_seconds": 1.0, "best_fitness": 2.9999}}
        regressions = compare("mqo", self.baseline, current)
        assert [r.kind for r in regressions] == ["iv"]
        assert "lower" in str(regressions[0])

    def test_iv_gain_and_speedup_pass(self):
        current = {"fast": {"wall_seconds": 0.5, "best_fitness": 3.5}}
        assert compare("mqo", self.baseline, current) == []

    def test_one_sided_metrics_are_not_value_compared(self):
        # compare() never value-diffs a metric present on only one side —
        # there is nothing meaningful to diff against.  The drift itself
        # is key_mismatch()'s job, and GateResult.passed fails on it.
        current = {"fast": {"best_fitness": 3.0, "new_wall_seconds": 99.0}}
        assert compare("mqo", self.baseline, current) == []

    def test_counters_never_gate(self):
        current = {"fast": {"wall_seconds": 1.0, "best_fitness": 3.0, "calls": 1}}
        assert compare("mqo", self.baseline, current) == []

    def test_throughput_drop_fails_but_gain_passes(self):
        # The scale sweep's ratchet: rates gate in the *opposite*
        # direction of wall time — a drop past 1/tolerance regresses.
        baseline = {"steady": {"queries_per_sec": 3000.0}}
        slower = {"steady": {"queries_per_sec": 1000.0}}
        regressions = compare(
            "scale", baseline, slower, wall_tolerance=2.0
        )
        assert [r.kind for r in regressions] == ["throughput"]
        assert "lower" in str(regressions[0])
        within = {"steady": {"queries_per_sec": 1600.0}}
        assert compare("scale", baseline, within, wall_tolerance=2.0) == []
        faster = {"steady": {"queries_per_sec": 9000.0}}
        assert compare("scale", baseline, faster, wall_tolerance=2.0) == []

    def test_memory_growth_fails_like_wall_time(self):
        baseline = {"steady": {"peak_rss_mb": 100.0}}
        bloated = {"steady": {"peak_rss_mb": 350.0}}
        regressions = compare(
            "scale", baseline, bloated, wall_tolerance=3.0
        )
        assert [r.kind for r in regressions] == ["mem"]
        assert "larger" in str(regressions[0])
        shrunk = {"steady": {"peak_rss_mb": 60.0}}
        assert compare("scale", baseline, shrunk, wall_tolerance=3.0) == []

    def test_tolerance_validation(self):
        with pytest.raises(ConfigError):
            compare("mqo", {}, {}, wall_tolerance=0.5)
        with pytest.raises(ConfigError):
            compare("mqo", {}, {}, iv_tolerance=-1.0)


class TestKeyMismatch:
    """Regression: baseline/fresh key drift must fail loudly, not KeyError.

    Before the fix a snapshot script that grew or lost a gated field kept
    gating the shrinking intersection silently; the committed baseline no
    longer described what the script measured.
    """

    baseline = {"fast": {"wall_seconds": 1.0, "best_fitness": 3.0}}

    def test_added_gated_key_reported(self):
        current = {
            "fast": {"wall_seconds": 1.0, "best_fitness": 3.0},
            "extra": {"reopt_seconds": 0.1},
        }
        added, removed = key_mismatch(self.baseline, current)
        assert added == ["extra.reopt_seconds"] and removed == []

    def test_removed_gated_key_reported(self):
        current = {"fast": {"wall_seconds": 1.0}}
        added, removed = key_mismatch(self.baseline, current)
        assert added == [] and removed == ["fast.best_fitness"]

    def test_ungated_drift_is_ignored(self):
        # Counters and labels are not gated, so their drift is not a
        # baseline-staleness signal.
        current = {
            "fast": {"wall_seconds": 1.0, "best_fitness": 3.0, "calls": 7},
            "note": {"queries": 12},
        }
        assert key_mismatch(self.baseline, current) == ([], [])

    def test_matching_snapshots_are_clean(self):
        assert key_mismatch(self.baseline, self.baseline) == ([], [])


class TestRunGate:
    def fake_repo(self, tmp_path, *, slowdown=1.0, iv=3.0):
        """A miniature repo: one committed baseline + snapshot script."""
        (tmp_path / "benchmarks").mkdir()
        (tmp_path / "BENCH_mqo.json").write_text(json.dumps(
            {"fast": {"wall_seconds": 1.0, "best_fitness": 3.0}}
        ))
        (tmp_path / "benchmarks" / "mqo_snapshot.py").write_text(
            "def snapshot():\n"
            f"    return {{'fast': {{'wall_seconds': {slowdown}, "
            f"'best_fitness': {iv}}}}}\n"
        )
        return tmp_path

    def test_gate_passes_and_appends_history(self, tmp_path):
        root = self.fake_repo(tmp_path)
        results = run_gate(["mqo"], root=root, wall_tolerance=3.0)
        assert len(results) == 1 and results[0].passed
        history = (root / "BENCH_history.jsonl").read_text().splitlines()
        line = json.loads(history[0])
        assert line["snapshot"] == "mqo" and line["passed"] is True
        assert line["metrics"]["fast.wall_seconds"] == 1.0
        # A second run appends, never truncates.
        run_gate(["mqo"], root=root, wall_tolerance=3.0)
        assert len(
            (root / "BENCH_history.jsonl").read_text().splitlines()
        ) == 2

    def test_gate_fails_on_synthetic_slowdown(self, tmp_path):
        root = self.fake_repo(tmp_path, slowdown=2.0)
        results = run_gate(["mqo"], root=root, wall_tolerance=1.5)
        assert not results[0].passed
        line = json.loads(
            (root / "BENCH_history.jsonl").read_text().splitlines()[0]
        )
        assert line["passed"] is False and line["regressions"]

    def test_gate_fails_when_the_snapshot_grows_a_gated_key(self, tmp_path):
        root = self.fake_repo(tmp_path)
        (root / "benchmarks" / "mqo_snapshot.py").write_text(
            "def snapshot():\n"
            "    return {'fast': {'wall_seconds': 1.0, 'best_fitness': 3.0,\n"
            "                     'reopt_seconds': 0.2}}\n"
        )
        results = run_gate(["mqo"], root=root)
        assert not results[0].passed
        assert results[0].added == ["fast.reopt_seconds"]
        assert results[0].regressions == []
        report = render_gate(results)
        assert "MISMATCH" in report and "+fast.reopt_seconds" in report
        assert "make bench-mqo" in report  # the actionable fix

    def test_gate_fails_when_the_baseline_has_a_stale_gated_key(self, tmp_path):
        root = self.fake_repo(tmp_path)
        (root / "BENCH_mqo.json").write_text(json.dumps({
            "fast": {"wall_seconds": 1.0, "best_fitness": 3.0, "mean_iv": 2.0},
        }))
        results = run_gate(["mqo"], root=root)
        assert not results[0].passed
        assert results[0].removed == ["fast.mean_iv"]
        assert "-fast.mean_iv" in render_gate(results)

    def test_mismatch_lands_in_history(self, tmp_path):
        root = self.fake_repo(tmp_path)
        (root / "BENCH_mqo.json").write_text(json.dumps({
            "fast": {"wall_seconds": 1.0, "best_fitness": 3.0, "mean_iv": 2.0},
        }))
        run_gate(["mqo"], root=root)
        line = json.loads(
            (root / "BENCH_history.jsonl").read_text().splitlines()[0]
        )
        assert line["passed"] is False
        assert line["removed"] == ["fast.mean_iv"]

    def test_env_var_sets_the_tolerance(self, tmp_path, monkeypatch):
        root = self.fake_repo(tmp_path, slowdown=2.0)
        monkeypatch.setenv("BENCH_GATE_TOLERANCE", "1.5")
        assert not run_gate(["mqo"], root=root)[0].passed
        monkeypatch.setenv("BENCH_GATE_TOLERANCE", "2.5")
        assert run_gate(["mqo"], root=root)[0].passed

    def test_explicit_tolerance_beats_the_env_var(self, tmp_path, monkeypatch):
        root = self.fake_repo(tmp_path, slowdown=2.0)
        monkeypatch.setenv("BENCH_GATE_TOLERANCE", "1.1")
        assert run_gate(["mqo"], root=root, wall_tolerance=2.5)[0].passed

    def test_history_can_be_disabled(self, tmp_path):
        root = self.fake_repo(tmp_path)
        run_gate(["mqo"], root=root, history_path=None)
        assert not (root / "BENCH_history.jsonl").exists()

    def test_unknown_snapshot_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="unknown snapshot"):
            run_gate(["nope"], root=self.fake_repo(tmp_path))

    def test_missing_baseline_rejected(self, tmp_path):
        root = self.fake_repo(tmp_path)
        (root / "BENCH_mqo.json").unlink()
        with pytest.raises(ConfigError, match="baseline"):
            run_gate(["mqo"], root=root)

    def test_script_without_snapshot_callable_rejected(self, tmp_path):
        root = self.fake_repo(tmp_path)
        (root / "benchmarks" / "mqo_snapshot.py").write_text("x = 1\n")
        with pytest.raises(ConfigError, match="snapshot"):
            run_gate(["mqo"], root=root)


class TestRender:
    def test_render_marks_pass_fail_and_regressions(self):
        result = GateResult(
            name="mqo",
            baseline={"fast": {"wall_seconds": 1.0, "best_fitness": 3.0}},
            current={"fast": {"wall_seconds": 4.0, "best_fitness": 3.0}},
            regressions=[Regression("mqo", "fast.wall_seconds", "wall", 1.0, 4.0)],
            wall_seconds=0.5,
        )
        text = render_gate([result])
        assert "FAIL" in text and "REGRESSION" in text
        assert "x4.00" in text
        clean = GateResult(
            name="mqo",
            baseline=result.baseline,
            current=result.baseline,
        )
        assert "PASS" in render_gate([clean])


@pytest.mark.slow
class TestRealSnapshots:
    def test_default_tolerance_is_generous(self):
        assert DEFAULT_WALL_TOLERANCE >= 2.0

    def test_committed_mqo_baseline_gates_cleanly(self):
        # Re-runs the real MQO benchmark: deterministic IV must match the
        # committed baseline exactly; wall clock within the default slack.
        results = run_gate(["mqo"], root=".", history_path=None)
        assert results[0].passed, render_gate(results)
