"""Capacity-constrained resources (servers) with queueing.

The paper's *computational latency* includes "query queuing time": queries
contend for the local federation server and for each remote server.  A
:class:`Resource` models one such server pool; requests queue FIFO (or by
priority for :class:`PriorityResource`) and are granted as units free up.
"""

from __future__ import annotations

import heapq
import typing

from repro.errors import SimulationError
from repro.sim.event import Event

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.scheduler import Simulator

__all__ = ["Request", "Resource", "PriorityResource"]


class Request(Event):
    """A pending claim on a resource unit.

    Fires (with the request itself as value) once the unit is granted.
    Release by passing it back to :meth:`Resource.release`.
    """

    def __init__(self, resource: "Resource", priority: float = 0.0) -> None:
        super().__init__(resource.sim, name=f"Request({resource.name})")
        self.resource = resource
        self.priority = priority
        self.requested_at = resource.sim.now
        self.granted_at: float | None = None

    @property
    def wait_time(self) -> float:
        """Minutes spent queueing, or time-so-far if still pending."""
        end = self.granted_at if self.granted_at is not None else self.sim.now
        return end - self.requested_at

    def cancel(self) -> None:
        """Withdraw a still-queued request."""
        self.resource._cancel(self)


class Resource:
    """A FIFO server pool with integral ``capacity``."""

    def __init__(self, sim: "Simulator", capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = int(capacity)
        self.name = name or "resource"
        self._users: set[Request] = set()
        self._queue: list[tuple[float, int, Request]] = []
        self._seq = 0
        self.total_requests = 0
        self.total_wait = 0.0

    # -- queue discipline (overridden by PriorityResource) -----------------

    def _sort_key(self, request: Request) -> float:
        return 0.0  # FIFO: sequence number alone decides

    # -- public API ---------------------------------------------------------

    @property
    def in_use(self) -> int:
        """Units currently granted."""
        return len(self._users)

    @property
    def queue_length(self) -> int:
        """Requests still waiting."""
        return len(self._queue)

    def request(self, priority: float = 0.0) -> Request:
        """Claim one unit; the returned event fires when granted."""
        req = Request(self, priority=priority)
        self.total_requests += 1
        self._seq += 1
        heapq.heappush(self._queue, (self._sort_key(req), self._seq, req))
        self._dispatch()
        return req

    def release(self, request: Request) -> None:
        """Return a granted unit to the pool."""
        if request not in self._users:
            raise SimulationError(
                f"release of a request that does not hold {self.name!r}"
            )
        self._users.discard(request)
        self._dispatch()

    def _cancel(self, request: Request) -> None:
        if request in self._users:
            raise SimulationError("cannot cancel a granted request; release it")
        self._queue = [entry for entry in self._queue if entry[2] is not request]
        heapq.heapify(self._queue)

    def _dispatch(self) -> None:
        while self._queue and len(self._users) < self.capacity:
            _key, _seq, req = heapq.heappop(self._queue)
            req.granted_at = self.sim.now
            self.total_wait += req.wait_time
            self._users.add(req)
            req.succeed(req)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}({self.name!r}, capacity={self.capacity}, "
            f"in_use={self.in_use}, queued={self.queue_length})"
        )


class PriorityResource(Resource):
    """A resource whose queue is ordered by request priority (low first)."""

    def _sort_key(self, request: Request) -> float:
        return request.priority
