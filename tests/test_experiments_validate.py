"""Tests: the reproduction validator's report machinery.

The full `validate_all()` run is exercised by ``python -m repro check`` and
the benchmark suite; here we test the claim/report plumbing and one cheap
section end-to-end.
"""

from __future__ import annotations

from repro.experiments.validate import Claim, _fig4_claims, render_report


class TestClaimsAndReport:
    def test_fig4_section_passes(self):
        claims = _fig4_claims()
        assert len(claims) == 3
        assert all(claim.passed for claim in claims)

    def test_report_renders_pass_and_fail(self):
        claims = [
            Claim("figX", "holds", True, "detail-a"),
            Claim("figY", "broken", False, "detail-b"),
        ]
        report = render_report(claims)
        assert "PASS" in report
        assert "FAIL" in report
        assert "1/2 claims hold" in report
        assert "1 FAILED" in report

    def test_report_all_passing_footer(self):
        report = render_report([Claim("f", "ok", True)])
        assert report.endswith("1/1 claims hold")
        assert "FAILED" not in report

    def test_cli_check_exit_code(self, monkeypatch, capsys):
        """`repro check` exits 0 when all claims pass, 1 otherwise."""
        from repro.experiments import cli, validate

        monkeypatch.setattr(
            validate, "_SECTIONS", [lambda: [Claim("f", "ok", True)]]
        )
        assert cli.main(["check"]) == 0
        capsys.readouterr()

        monkeypatch.setattr(
            validate, "_SECTIONS", [lambda: [Claim("f", "no", False)]]
        )
        assert cli.main(["check"]) == 1
