"""A unified metrics registry: counters, gauges, histograms.

The runtime already measures plenty — :class:`~repro.sim.monitor.Monitor`
aggregates, :class:`~repro.federation.faults.FaultStats` counters,
:class:`~repro.mqo.evaluator.EvaluatorStats` fast-path instrumentation,
the replication manager's sync tallies — but each behind its own ad-hoc
attribute names.  :class:`MetricsRegistry` gives them one namespace and one
JSON-ready snapshot, so an experiment can dump *everything it knows* in a
single call (:func:`registry_from_system`), and dashboards/tests consume
one stable format instead of five.
"""

from __future__ import annotations

import json
import math
import re
import typing
from bisect import bisect_left
from dataclasses import fields as dataclass_fields
from dataclasses import is_dataclass

from repro.errors import SimulationError
from repro.sim.monitor import Monitor

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.federation.system import FederatedSystem

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "registry_from_system",
    "to_prometheus",
]

#: Default histogram bucket upper bounds (minutes / IV units).
DEFAULT_BUCKETS = (0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0)."""
        if amount < 0:
            raise SimulationError(f"counter {self.name!r} cannot decrease")
        self.value += amount

    def snapshot(self) -> float:
        """Current value."""
        return self.value


class Gauge:
    """A value that can move both ways."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the current value."""
        self.value = float(value)

    def snapshot(self) -> float:
        """Current value."""
        return self.value


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max (Prometheus-style).

    ``bounds`` are inclusive upper edges; one overflow bucket catches
    everything beyond the last bound.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "minimum", "maximum")

    def __init__(self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise SimulationError(
                f"histogram {name!r} needs sorted, non-empty bucket bounds"
            )
        self.name = name
        self.bounds = tuple(float(bound) for bound in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        self.counts[self._bucket(value)] += 1
        self.count += 1
        self.sum += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def _bucket(self, value: float) -> int:
        # First bound >= value; beyond the last bound -> overflow bucket.
        return bisect_left(self.bounds, value)

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate of the ``q``-quantile (0–1), interpolated within buckets.

        Finds the bucket holding the ``q * count``-th sample, then assumes
        samples are spread uniformly across that bucket's span and
        interpolates linearly between its edges (the true minimum /
        maximum stand in for the open edges of the first and overflow
        buckets).  The estimate is clamped into ``[min, max]`` and is
        monotone non-decreasing in ``q``; with all mass in one bucket it
        degrades gracefully to that bucket's span.
        """
        if not 0.0 <= q <= 1.0:
            raise SimulationError(f"quantile q must be in [0, 1], got {q}")
        if self.count == 0:
            raise SimulationError(f"quantile of empty histogram {self.name!r}")
        target = q * self.count
        running = 0
        for index, bucket_count in enumerate(self.counts):
            if not bucket_count:
                continue
            if running + bucket_count >= target:
                lower = self.bounds[index - 1] if index > 0 else self.minimum
                upper = (
                    self.bounds[index]
                    if index < len(self.bounds)
                    else self.maximum
                )
                lower = max(min(lower, self.maximum), self.minimum)
                upper = max(min(upper, self.maximum), self.minimum)
                fraction = (target - running) / bucket_count
                estimate = lower + (upper - lower) * max(0.0, fraction)
                return min(max(estimate, self.minimum), self.maximum)
            running += bucket_count
        return self.maximum

    def merge_from(self, other: "Histogram") -> "Histogram":
        """Fold ``other`` into this histogram, bucket-wise.

        Exact: every aggregate (bucket counts, count, sum, min, max) of the
        merged histogram equals what one histogram fed both streams would
        hold, up to float addition order on ``sum``.  Requires identical
        bucket bounds.
        """
        if other.bounds != self.bounds:
            raise SimulationError(
                f"cannot merge histogram {other.name!r} into {self.name!r}: "
                f"bucket bounds differ"
            )
        for index, bucket_count in enumerate(other.counts):
            self.counts[index] += bucket_count
        self.count += other.count
        self.sum += other.sum
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        return self

    def snapshot(self) -> dict:
        """JSON-ready representation."""
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "mean": self.mean,
        }

    @classmethod
    def from_snapshot(cls, name: str, data: dict) -> "Histogram":
        """Inverse of :meth:`snapshot` (used to ship histograms across processes)."""
        histogram = cls(name, bounds=tuple(data["bounds"]))
        histogram.counts = [int(count) for count in data["counts"]]
        histogram.count = int(data["count"])
        histogram.sum = float(data["sum"])
        histogram.minimum = math.inf if data["min"] is None else float(data["min"])
        histogram.maximum = -math.inf if data["max"] is None else float(data["max"])
        return histogram


class MetricsRegistry:
    """A namespace of counters, gauges and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _claim(self, name: str, kind: dict) -> None:
        for family in (self._counters, self._gauges, self._histograms):
            if family is not kind and name in family:
                raise SimulationError(
                    f"metric name {name!r} already registered with another type"
                )

    def counter(self, name: str) -> Counter:
        """Get or create the counter ``name``."""
        self._claim(name, self._counters)
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge ``name``."""
        self._claim(name, self._gauges)
        if name not in self._gauges:
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create the histogram ``name``."""
        self._claim(name, self._histograms)
        if name not in self._histograms:
            self._histograms[name] = Histogram(name, bounds)
        return self._histograms[name]

    # -- adapters over the existing instrumentation ------------------------

    def ingest_counters(self, prefix: str, stats: object) -> None:
        """Register every numeric field of a stats dataclass as a counter.

        Unifies :class:`~repro.federation.faults.FaultStats` and
        :class:`~repro.mqo.evaluator.EvaluatorStats` (non-numeric fields
        such as dict-valued diagnostics are skipped).
        """
        if not is_dataclass(stats):
            raise SimulationError(f"{prefix!r}: ingest_counters needs a dataclass")
        for spec in dataclass_fields(stats):
            value = getattr(stats, spec.name)
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            counter = self.counter(f"{prefix}.{spec.name}")
            counter.value = 0.0
            counter.inc(value)

    def observe_monitor(self, prefix: str, monitor: Monitor) -> None:
        """Publish a :class:`Monitor`'s aggregates as gauges."""
        self.gauge(f"{prefix}.count").set(monitor.count)
        self.gauge(f"{prefix}.mean").set(monitor.mean)
        self.gauge(f"{prefix}.stddev").set(monitor.stddev)
        if monitor.count:
            self.gauge(f"{prefix}.min").set(monitor.minimum)
            self.gauge(f"{prefix}.max").set(monitor.maximum)

    # -- output -----------------------------------------------------------

    def snapshot(self) -> dict:
        """One JSON-ready dict of every registered metric."""
        return {
            "counters": {
                name: counter.snapshot()
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.snapshot()
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.snapshot()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        """The snapshot as a JSON document."""
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


def registry_from_system(system: "FederatedSystem") -> MetricsRegistry:
    """Snapshot everything a :class:`FederatedSystem` run measured.

    Unifies the IV/CL/SL monitors, per-outcome latency histograms, the
    replication manager's sync tallies, fault-injector counters (when
    faults were wired) and executor-level retry/failover totals under one
    registry.
    """
    registry = MetricsRegistry()

    registry.observe_monitor("query.iv", system.iv_monitor)
    registry.observe_monitor("query.cl", system.cl_monitor)
    registry.observe_monitor("query.sl", system.sl_monitor)

    iv_hist = registry.histogram(
        "query.iv.hist", bounds=(0.1, 0.25, 0.5, 0.75, 0.9, 1.0)
    )
    cl_hist = registry.histogram("query.cl.hist")
    sl_hist = registry.histogram("query.sl.hist")
    for outcome in system.outcomes:
        iv_hist.observe(outcome.information_value)
        cl_hist.observe(outcome.computational_latency)
        sl_hist.observe(outcome.synchronization_latency)

    registry.counter("query.completed").inc(len(system.outcomes))
    registry.counter("query.failed").inc(system.failed_count)
    registry.counter("query.degraded").inc(system.degraded_count)
    registry.counter("query.retries").inc(system.total_retries)
    registry.counter("query.failovers").inc(system.total_failovers)

    replication = system.replication
    registry.counter("sync.total").inc(replication.total_syncs)
    registry.counter("sync.skipped").inc(replication.syncs_skipped)
    registry.counter("sync.delayed").inc(replication.syncs_delayed)
    registry.counter("sync.qos_violations").inc(replication.qos_violations)
    registry.observe_monitor("sync.staleness", replication.staleness)
    for table, gauges in sorted(replication.table_gauges(system.sim.now).items()):
        for name, value in sorted(gauges.items()):
            registry.gauge(f"{name}.{table}").set(value)

    for site_id in sorted(system.sites):
        site = system.sites[site_id]
        for name, value in sorted(site.telemetry().items()):
            registry.gauge(f"{name}.{site.name}").set(value)

    if system.fault_stats is not None:
        registry.ingest_counters("faults", system.fault_stats)

    online = getattr(system, "online", None)
    if online is not None:
        registry.ingest_counters("mqo.online", online.stats)

    if system.tracer is not None:
        registry.counter("trace.records").inc(len(system.tracer))
        registry.counter("tracer.dropped_events").inc(system.tracer.dropped)

    return registry


# -- Prometheus text exposition ------------------------------------------------

_PROM_NAME = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str, prefix: str) -> str:
    sanitized = _PROM_NAME.sub("_", name)
    if not sanitized or not (sanitized[0].isalpha() or sanitized[0] in "_:"):
        sanitized = f"_{sanitized}"
    return f"{prefix}_{sanitized}" if prefix else sanitized


def _prom_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if math.isnan(value):
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _prom_histogram(lines: list[str], name: str, data: dict) -> None:
    lines.append(f"# TYPE {name} histogram")
    cumulative = 0
    for bound, bucket_count in zip(data["bounds"], data["counts"]):
        cumulative += bucket_count
        lines.append(f'{name}_bucket{{le="{_prom_value(bound)}"}} {cumulative}')
    lines.append(f'{name}_bucket{{le="+Inf"}} {data["count"]}')
    lines.append(f"{name}_sum {_prom_value(data['sum'])}")
    lines.append(f"{name}_count {data['count']}")


def to_prometheus(snapshot: dict, prefix: str = "repro") -> str:
    """Render a metrics snapshot in Prometheus text exposition format 0.0.4.

    Accepts both snapshot shapes the repo produces —
    :meth:`MetricsRegistry.snapshot` (``counters``/``gauges``/``histograms``)
    and :meth:`~repro.obs.live.LiveRegistry.snapshot` (which adds ``rates``,
    ``quantiles``, ``time`` and per-table ``tables``).  Counters export as
    ``counter``; gauges, rates and quantiles as ``gauge``; histograms as
    cumulative ``_bucket``/``_sum``/``_count`` series; per-table gauges get a
    ``table`` label.  Metric names are sanitized (``.`` → ``_``) and prefixed.
    """
    lines: list[str] = []
    if "time" in snapshot:
        name = _prom_name("time", prefix)
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_prom_value(snapshot['time'])}")
    for section, prom_type in (
        ("counters", "counter"),
        ("gauges", "gauge"),
        ("rates", "gauge"),
        ("quantiles", "gauge"),
    ):
        for metric, value in sorted(snapshot.get(section, {}).items()):
            name = _prom_name(metric, prefix)
            lines.append(f"# TYPE {name} {prom_type}")
            lines.append(f"{name} {_prom_value(value)}")
    tables = snapshot.get("tables", {})
    by_metric: dict[str, list[tuple[str, float]]] = {}
    for table, gauges in sorted(tables.items()):
        for metric, value in sorted(gauges.items()):
            by_metric.setdefault(metric, []).append((table, value))
    for metric, series in sorted(by_metric.items()):
        name = _prom_name(metric, prefix)
        lines.append(f"# TYPE {name} gauge")
        for table, value in series:
            lines.append(f'{name}{{table="{table}"}} {_prom_value(value)}')
    for metric, data in sorted(snapshot.get("histograms", {}).items()):
        _prom_histogram(lines, _prom_name(metric, prefix), data)
    return "\n".join(lines) + "\n"
