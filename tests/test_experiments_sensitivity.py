"""Unit tests: the EXT1 sensitivity experiment."""

from __future__ import annotations

import pytest

from repro.experiments.sensitivity import (
    SensitivityConfig,
    classify_plan,
    run_sensitivity,
)


@pytest.fixture(scope="module")
def small_table():
    config = SensitivityConfig(rates=(0.01, 0.2))
    return config, run_sensitivity(config)


class TestClassifyPlan:
    def test_all_four_kinds(self, fig4_world):
        from repro.core.enumeration import make_plan

        catalog, provider, query, rates = fig4_world
        immediate_replica = make_plan(
            query, catalog, provider, rates, 11.0, 11.0, frozenset()
        )
        assert classify_plan(immediate_replica) == "all-replica"
        all_remote = make_plan(
            query, catalog, provider, rates, 11.0, 11.0,
            frozenset(query.tables),
        )
        assert classify_plan(all_remote) == "all-remote"
        mixed = make_plan(
            query, catalog, provider, rates, 11.0, 11.0, frozenset({"T1"})
        )
        assert classify_plan(mixed) == "mixed"
        delayed = make_plan(
            query, catalog, provider, rates, 11.0, 13.0, frozenset()
        )
        assert classify_plan(delayed) == "delayed"


class TestRunSensitivity:
    def test_grid_is_complete(self, small_table):
        config, table = small_table
        expected = len(config.scenarios) * len(config.rates) ** 2
        assert len(table.rows) == expected

    def test_iv_is_valid_everywhere(self, small_table):
        _config, table = small_table
        for row in table.rows:
            assert 0.0 <= row[4] <= 1.0

    def test_corner_decisions_flip(self, small_table):
        _config, table = small_table
        decisions = {
            (row[0], row[1], row[2]): row[3] for row in table.rows
        }
        # Freshness-hungry corner vs latency-hungry corner differ in both
        # scenarios — the paper's central qualitative claim.
        assert decisions[("fig1", 0.01, 0.2)] != decisions[("fig1", 0.2, 0.01)]
        assert decisions[("fig2", 0.01, 0.2)] != decisions[("fig2", 0.2, 0.01)]

    def test_iv_decreases_with_either_rate(self, small_table):
        _config, table = small_table
        by_key = {(row[0], row[1], row[2]): row[4] for row in table.rows}
        assert by_key[("fig1", 0.01, 0.01)] > by_key[("fig1", 0.2, 0.2)]
