"""Plan explanation: why IVQP chose what it chose.

Decision-support users (and paper readers) want the Figure 1/2 trade-off
made visible per query: what would the all-remote plan have cost, what
would the replicas have given, was waiting for a synchronization worth it.
:func:`explain_choice` runs the optimizer, evaluates the canonical
alternatives at the same submission instant, and reports them side by side.
"""

from __future__ import annotations

import typing

from repro.core.enumeration import CostProvider, make_plan, split_tables
from repro.core.optimizer import IVQPOptimizer
from repro.core.plan import QueryPlan
from repro.core.value import DiscountRates
from repro.federation.catalog import Catalog
from repro.reporting.tables import ResultTable

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workload.query import DSSQuery

__all__ = ["RouteComparison", "explain_choice"]


class RouteComparison:
    """The chosen plan next to its canonical alternatives."""

    def __init__(
        self,
        chosen: QueryPlan,
        alternatives: dict[str, QueryPlan],
    ) -> None:
        self.chosen = chosen
        self.alternatives = dict(alternatives)

    @property
    def chosen_label(self) -> str:
        """Which canonical route (if any) the chosen plan matches."""
        for label, plan in self.alternatives.items():
            if (
                plan.remote_tables == self.chosen.remote_tables
                and abs(plan.start_time - self.chosen.start_time) < 1e-9
            ):
                return label
        return "custom-mix"

    def margin_over(self, label: str) -> float:
        """IV advantage of the chosen plan over one alternative."""
        return (
            self.chosen.information_value
            - self.alternatives[label].information_value
        )

    def as_table(self) -> ResultTable:
        """The comparison as a printable table (chosen row first)."""
        table = ResultTable(
            title=f"Route comparison for {self.chosen.query.name!r} "
            f"at t={self.chosen.submitted_at:g}",
            headers=["route", "remote_tables", "start", "cl", "sl", "iv"],
        )

        def add(label: str, plan: QueryPlan) -> None:
            table.add(
                label,
                ",".join(sorted(plan.remote_tables)) or "(none)",
                plan.start_time,
                plan.computational_latency,
                plan.synchronization_latency,
                plan.information_value,
            )

        add(f"CHOSEN ({self.chosen_label})", self.chosen)
        for label, plan in self.alternatives.items():
            add(label, plan)
        return table


def explain_choice(
    query: "DSSQuery",
    catalog: Catalog,
    cost_provider: CostProvider,
    rates: DiscountRates,
    submitted_at: float,
) -> RouteComparison:
    """Run IVQP and line its choice up against the canonical routes.

    Alternatives reported:

    * ``all-remote`` — every table from its base copy, immediately (the
      Federation baseline's plan);
    * ``all-replica`` — every table from its replica, immediately (the
      Data Warehouse plan; present only under full replication);
    * ``delayed-replica`` — the all-replica plan started at the *next*
      synchronization completion (Figure 2's delayed option).
    """
    optimizer = IVQPOptimizer(catalog, cost_provider, rates)
    chosen = optimizer.choose_plan(query, submitted_at)

    alternatives: dict[str, QueryPlan] = {}
    alternatives["all-remote"] = make_plan(
        query, catalog, cost_provider, rates,
        submitted_at, submitted_at, frozenset(query.tables),
    )
    replicated, base_only = split_tables(query, catalog)
    if not base_only:
        alternatives["all-replica"] = make_plan(
            query, catalog, cost_provider, rates,
            submitted_at, submitted_at, frozenset(),
        )
    if replicated:
        next_sync = min(
            catalog.replica(name).next_sync_after(submitted_at)
            for name in replicated
        )
        alternatives["delayed-replica"] = make_plan(
            query, catalog, cost_provider, rates,
            submitted_at, next_sync, frozenset(base_only),
        )
    return RouteComparison(chosen, alternatives)
