"""Starvation prevention via aging (paper Section 3.3).

The IV formula favours immediate execution: the *marginal* loss of delaying
a query shrinks as it waits (``(1−λ)^t`` flattens), so under heavy load the
scheduler keeps postponing the same long-waiting queries.  The paper's fix
"adapt[s] the information value formula by adding a function of time values
to increase the information value of queries queued for a period", designed
to grow *faster* than the SL/CL discounts shrink.

:class:`AgingPolicy` implements that boost as an exponential ramp::

    g(w) = BV × ((1 + β)^w − 1)

whose growth rate β must exceed the discount rates so that, past some wait,
priority strictly increases with waiting time.  The boost affects only the
*scheduling priority*; the reported information value of a result is always
the undoctored IV.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.value import DiscountRates
from repro.errors import ConfigError

__all__ = ["AgingPolicy"]


@dataclass(frozen=True)
class AgingPolicy:
    """Exponential aging boost for queued queries.

    Attributes
    ----------
    beta:
        Per-minute growth rate of the boost.  Must be positive; to satisfy
        the paper's "faster than the discounts" requirement choose
        ``beta > max(λ_CL, λ_SL)`` (checked by :meth:`validate_against`).
    grace_period:
        Waiting time (minutes) before the boost starts accruing.
    """

    beta: float = 0.2
    grace_period: float = 0.0

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise ConfigError(f"aging beta must be > 0, got {self.beta}")
        if self.grace_period < 0:
            raise ConfigError("grace period must be >= 0")

    def validate_against(self, rates: DiscountRates) -> None:
        """Check the paper's growth condition against given discount rates."""
        fastest = max(rates.computational, rates.synchronization)
        if self.beta <= fastest:
            raise ConfigError(
                f"aging beta {self.beta} must exceed the largest discount "
                f"rate {fastest} to outpace the IV decay (Section 3.3)"
            )

    def boost(self, business_value: float, waited: float) -> float:
        """The additive priority boost after ``waited`` minutes in queue."""
        if business_value < 0:
            raise ConfigError("business value must be >= 0")
        if waited < 0:
            raise ConfigError("waited must be >= 0")
        effective = max(0.0, waited - self.grace_period)
        if effective == 0.0:
            return 0.0
        return business_value * ((1.0 + self.beta) ** effective - 1.0)

    def priority(
        self,
        information_value: float,
        business_value: float,
        waited: float,
    ) -> float:
        """Scheduling priority: IV plus the aging boost."""
        return information_value + self.boost(business_value, waited)
