"""Alternative workload-order search strategies, for comparing with the GA.

The paper justifies its GA by citing Goldberg: "a GA provides a very good
tradeoff between exploration of the solution space and exploitation of
discovered maxima".  These baselines make that claim testable: random
search (pure exploration) and first-improvement hill climbing over the
swap neighbourhood (pure exploitation), both run under the same fitness-
evaluation budget as the GA (ablation ABL5).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.errors import OptimizationError
from repro.mqo.chromosome import random_permutation, swap_mutation
from repro.sim.rng import RandomSource

__all__ = ["SearchResult", "random_search", "hill_climb"]

Fitness = Callable[[list[int]], float]


@dataclass
class SearchResult:
    """Outcome of a budgeted search."""

    best: list[int]
    best_fitness: float
    evaluations: int


def _check(genes: Sequence[int], budget: int) -> None:
    if not genes:
        raise OptimizationError("search needs at least one gene")
    if budget < 1:
        raise OptimizationError("evaluation budget must be >= 1")


def random_search(
    genes: Sequence[int],
    fitness: Fitness,
    budget: int,
    seed: int = 0,
    seed_chromosome: Sequence[int] | None = None,
) -> SearchResult:
    """Evaluate ``budget`` random permutations; keep the best."""
    _check(genes, budget)
    rng = RandomSource(seed, "random-search")
    best = list(seed_chromosome) if seed_chromosome else list(genes)
    best_fitness = fitness(best)
    evaluations = 1
    while evaluations < budget:
        candidate = random_permutation(genes, rng)
        value = fitness(candidate)
        evaluations += 1
        if value > best_fitness:
            best, best_fitness = candidate, value
    return SearchResult(best=best, best_fitness=best_fitness,
                        evaluations=evaluations)


def hill_climb(
    genes: Sequence[int],
    fitness: Fitness,
    budget: int,
    seed: int = 0,
    seed_chromosome: Sequence[int] | None = None,
) -> SearchResult:
    """First-improvement hill climbing over random swap neighbours.

    Restarts from a fresh random permutation when a local optimum is
    detected (no improvement across ``len(genes)`` consecutive neighbour
    probes), continuing until the budget is spent.
    """
    _check(genes, budget)
    rng = RandomSource(seed, "hill-climb")
    current = list(seed_chromosome) if seed_chromosome else list(genes)
    current_fitness = fitness(current)
    best, best_fitness = list(current), current_fitness
    evaluations = 1
    stuck = 0
    patience = max(len(genes), 2)
    while evaluations < budget:
        neighbour = swap_mutation(current, rng)
        value = fitness(neighbour)
        evaluations += 1
        if value > current_fitness:
            current, current_fitness = neighbour, value
            stuck = 0
            if value > best_fitness:
                best, best_fitness = list(neighbour), value
        else:
            stuck += 1
            if stuck >= patience and evaluations < budget:
                current = random_permutation(genes, rng)
                current_fitness = fitness(current)
                evaluations += 1
                stuck = 0
                if current_fitness > best_fitness:
                    best, best_fitness = list(current), current_fitness
    return SearchResult(best=best, best_fitness=best_fitness,
                        evaluations=evaluations)
