"""Unit tests: streaming aggregators and the live registry fold."""

from __future__ import annotations

import random

import pytest

from repro.errors import SimulationError
from repro.obs import events
from repro.obs.live import (
    EwmaMean,
    EwmaRate,
    LiveRegistry,
    P2Quantile,
    WindowCounter,
)
from repro.baselines import ivqp_router
from repro.core.value import DiscountRates
from repro.federation.system import SystemConfig, TableSpec, build_system
from repro.obs.metrics import registry_from_system
from repro.sim.trace import TraceRecord
from repro.workload.query import DSSQuery

from tests.test_obs_checker import traced_system


class TestEwmaRate:
    def test_steady_stream_converges_to_true_rate(self):
        # 4 events/minute for long enough that the decayed sum settles.
        rate = EwmaRate(half_life=10.0)
        time = 0.0
        for _ in range(2_000):
            time += 0.25
            rate.observe(time)
        assert rate.rate(time) == pytest.approx(4.0, rel=0.02)

    def test_rate_decays_toward_zero_when_quiet(self):
        rate = EwmaRate(half_life=5.0)
        rate.observe(1.0)
        busy = rate.rate(1.0)
        assert rate.rate(6.0) == pytest.approx(busy / 2.0)
        assert rate.rate(101.0) == pytest.approx(0.0, abs=1e-6)

    def test_half_life_validation(self):
        with pytest.raises(SimulationError):
            EwmaRate(half_life=0.0)


class TestEwmaMean:
    def test_mean_weights_recent_values_more(self):
        mean = EwmaMean(half_life=1.0)
        mean.observe(0.0, 0.0)
        mean.observe(10.0, 100.0)
        # The old zero has decayed to 1/1024 of the new weight.
        assert mean.mean() > 99.0

    def test_empty_mean_is_zero(self):
        assert EwmaMean(half_life=1.0).mean() == 0.0

    def test_constant_stream_is_exact(self):
        mean = EwmaMean(half_life=3.0)
        for time in range(10):
            mean.observe(float(time), 7.5)
        assert mean.mean() == pytest.approx(7.5)


class TestWindowCounter:
    def test_counts_only_inside_window(self):
        counter = WindowCounter(window=10.0)
        for time in (1.0, 5.0, 9.0, 14.0):
            counter.observe(time)
        # (4, 14]: 5.0 stays (strictly inside), 1.0 fell out.
        assert counter.count(14.0) == 3
        assert counter.count(30.0) == 0

    def test_rate_is_count_over_window(self):
        counter = WindowCounter(window=4.0)
        for time in (1.0, 2.0, 3.0):
            counter.observe(time)
        assert counter.rate(3.0) == pytest.approx(0.75)

    def test_window_validation(self):
        with pytest.raises(SimulationError):
            WindowCounter(window=-1.0)


class TestP2Quantile:
    def test_exact_below_five_samples(self):
        sketch = P2Quantile(0.5)
        for value in (5.0, 1.0, 3.0):
            sketch.observe(value)
        assert sketch.value() == 3.0  # nearest-rank median of {1, 3, 5}
        assert sketch.count == 3

    def test_empty_sketch_reads_zero(self):
        assert P2Quantile(0.9).value() == 0.0

    def test_constant_stream_is_exact(self):
        sketch = P2Quantile(0.95)
        for _ in range(100):
            sketch.observe(42.0)
        assert sketch.value() == 42.0

    def test_estimate_always_within_observed_range(self):
        rng = random.Random(7)
        sketch = P2Quantile(0.95)
        values = [rng.lognormvariate(0.0, 1.5) for _ in range(500)]
        for value in values:
            sketch.observe(value)
        assert min(values) <= sketch.value() <= max(values)

    def test_typical_accuracy_on_uniform_stream(self):
        rng = random.Random(11)
        sketch = P2Quantile(0.5)
        for _ in range(5_000):
            sketch.observe(rng.uniform(0.0, 100.0))
        assert sketch.value() == pytest.approx(50.0, abs=5.0)

    def test_q_validation(self):
        with pytest.raises(SimulationError):
            P2Quantile(0.0)
        with pytest.raises(SimulationError):
            P2Quantile(1.0)


class TestLiveRegistry:
    @pytest.fixture(scope="class")
    def run(self):
        system = traced_system(num_queries=3)
        registry = LiveRegistry()
        for record in system.tracer.records:
            registry.observe(record)
        return system, registry

    def test_final_counters_match_post_hoc_registry(self, run):
        system, live = run
        post_hoc = registry_from_system(system).snapshot()["counters"]
        for name, value in live.final_counters().items():
            assert value == post_hoc.get(name, 0.0), name

    def test_histogram_buckets_match_post_hoc_registry(self, run):
        system, live = run
        post_hoc = registry_from_system(system).snapshot()["histograms"]
        snapshot = live.snapshot()
        for name in ("query.iv.hist", "query.cl.hist", "query.sl.hist"):
            assert snapshot["histograms"][name] == post_hoc[name], name

    def test_in_flight_returns_to_zero(self, run):
        _system, live = run
        assert live.in_flight == 0
        assert live.sites_down == 0
        assert live.outage_dwell() == 0.0

    def test_snapshot_structure(self, run):
        _system, live = run
        snapshot = live.snapshot()
        assert set(snapshot) == {
            "time", "counters", "gauges", "rates", "quantiles", "histograms",
            "tables",
        }
        assert snapshot["counters"]["query.submitted"] == 3
        assert snapshot["gauges"]["query.in_flight"] == 0
        assert snapshot["quantiles"]["query.cl.p50"] > 0.0

    def test_attach_subscribes_to_live_records(self):
        # Feed via subscription while the run executes, then replay the
        # retained trace into a second registry; the two folds must agree.
        config = SystemConfig(
            tables=[
                TableSpec("a", site=0, row_count=1_000),
                TableSpec("b", site=1, row_count=2_000),
            ],
            replicated=["a"],
            sync_mode="periodic",
            sync_mean_interval=4.0,
            rates=DiscountRates(0.02, 0.02),
            trace=True,
            seed=2,
        )
        system = build_system(config, ivqp_router)
        live = LiveRegistry().attach(system.tracer)
        system.submit(DSSQuery(query_id=1, name="q", tables=("a", "b")), at=2.0)
        system.run()
        replayed = LiveRegistry()
        for record in system.tracer.records:
            replayed.observe(record)
        assert live.snapshot() == replayed.snapshot()

    def test_iv_realization_tracks_plan_vs_outcome(self):
        live = LiveRegistry()
        live.observe(TraceRecord(0.0, events.SUBMIT, "q", {"qid": 1}))
        live.observe(TraceRecord(0.0, events.PLAN, "q", {"qid": 1, "est_iv": 0.8}))
        live.observe(TraceRecord(1.0, events.COMPLETE, "q", {"qid": 1, "iv": 0.4}))
        assert live.iv_realization_ratio() == pytest.approx(0.5)
        assert live.in_flight == 0

    def test_realization_is_one_before_any_completion(self):
        assert LiveRegistry().iv_realization_ratio() == 1.0

    def test_shed_ratio_counts_shed_against_arrivals(self):
        live = LiveRegistry(window=10.0)
        live.observe(TraceRecord(1.0, events.SUBMIT, "a", {"qid": 1}))
        live.observe(TraceRecord(1.5, events.MQO_SHED, "b", {"qid": 2}))
        live.observe(TraceRecord(2.0, events.SUBMIT, "c", {"qid": 3}))
        assert live.shed_ratio(2.0) == pytest.approx(1.0 / 3.0)
        # The window forgets: far in the future the ratio reads quiet.
        assert live.shed_ratio(100.0) == 0.0

    def test_outage_dwell_follows_fault_edges(self):
        live = LiveRegistry()
        live.observe(TraceRecord(5.0, events.FAULT_DOWN, "site:1", {}))
        assert live.sites_down == 1
        assert live.outage_dwell(9.0) == pytest.approx(4.0)
        live.observe(TraceRecord(10.0, events.FAULT_UP, "site:1", {}))
        assert live.sites_down == 0
        assert live.outage_dwell(11.0) == 0.0

    def test_malformed_ledger_counted_not_crashed(self):
        live = LiveRegistry()
        live.observe(TraceRecord(1.0, events.LEDGER, "q", {"query": "q"}))
        assert live.counters["ledger.malformed"] == 1
        assert "ledger.entries" not in live.counters

    def test_qos_staleness_threshold_counts_violations(self):
        live = LiveRegistry(qos_max_staleness=2.0)
        live.observe(TraceRecord(1.0, events.SYNC_APPLY, "a", {"gap": 1.0}))
        live.observe(TraceRecord(2.0, events.SYNC_APPLY, "a", {"gap": 5.0}))
        assert live.counters.get("sync.qos_violations") == 1
        assert live.staleness_mean() == pytest.approx(3.0)
