"""Replicated runs with confidence intervals.

A single simulated stream is one draw; the paper reports single numbers,
but a credible reproduction should know its run-to-run spread.  These
helpers repeat any experiment function across seeds and summarise each
metric as mean ± half-width of a Student-t confidence interval.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.errors import ConfigError

__all__ = ["MeanCI", "summarize", "replicate"]

#: Two-sided Student-t 97.5% quantiles for df = 1..30 (95% CIs).
_T_975 = [
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
]


def _t_quantile(df: int) -> float:
    if df < 1:
        raise ConfigError("confidence interval needs at least 2 samples")
    if df <= len(_T_975):
        return _T_975[df - 1]
    return 1.96  # normal approximation for large df


@dataclass(frozen=True)
class MeanCI:
    """Mean with a 95% confidence half-width."""

    mean: float
    half_width: float
    samples: int

    @property
    def low(self) -> float:
        """Lower CI bound."""
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        """Upper CI bound."""
        return self.mean + self.half_width

    def overlaps(self, other: "MeanCI") -> bool:
        """Whether two intervals intersect (no significant difference)."""
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.half_width:.4f} (n={self.samples})"


def summarize(samples: Sequence[float]) -> MeanCI:
    """Mean ± 95% CI of a sample list."""
    if len(samples) < 2:
        raise ConfigError("summarize needs at least 2 samples")
    n = len(samples)
    mean = math.fsum(samples) / n
    variance = math.fsum((x - mean) ** 2 for x in samples) / (n - 1)
    half = _t_quantile(n - 1) * math.sqrt(variance / n)
    return MeanCI(mean=mean, half_width=half, samples=n)


def replicate(
    run: Callable[[int], float],
    seeds: Sequence[int],
) -> MeanCI:
    """Run ``run(seed)`` per seed and summarise the returned metric."""
    if len(seeds) < 2:
        raise ConfigError("replicate needs at least 2 seeds")
    return summarize([float(run(seed)) for seed in seeds])
