"""Network model: transfer times and cross-site coordination overhead.

Section 4.3 observes that "a large number of nodes suggests that many
different nodes may be involved in evaluating a query.  The communication
overhead among different nodes will result in the reduction of information
value" — so the model charges a per-site coordination cost on top of
bandwidth-limited transfers.

Links may be heterogeneous: per-site overrides describe e.g. a branch
office behind a slow WAN next to a data-center peer on a fat pipe.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType

from repro.errors import ConfigError

__all__ = ["SiteLink", "NetworkModel"]


@dataclass(frozen=True)
class SiteLink:
    """Link characteristics of one remote site."""

    base_latency: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.base_latency < 0:
            raise ConfigError("link base_latency must be >= 0")
        if self.bandwidth <= 0:
            raise ConfigError("link bandwidth must be > 0")


@dataclass(frozen=True, eq=False)
class NetworkModel:
    """Latency/bandwidth/coordination parameters, all in minutes and bytes.

    Attributes
    ----------
    base_latency:
        Default fixed per-remote-exchange latency (connection setup).
    bandwidth:
        Default bytes transferable per minute.
    coordination_overhead:
        Extra minutes charged per *additional* distinct remote site beyond
        the first involved in one query (distributed-join coordination).
    site_links:
        Per-site overrides of latency/bandwidth (heterogeneous links).
    """

    base_latency: float = 0.05
    bandwidth: float = 50_000_000.0
    coordination_overhead: float = 0.25
    site_links: dict[int, SiteLink] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.base_latency < 0:
            raise ConfigError("base_latency must be >= 0")
        if self.bandwidth <= 0:
            raise ConfigError("bandwidth must be > 0")
        if self.coordination_overhead < 0:
            raise ConfigError("coordination_overhead must be >= 0")
        # Freeze the override map so the model stays a value object, and
        # cache the default link instead of allocating one per lookup.
        object.__setattr__(
            self, "site_links", MappingProxyType(dict(self.site_links))
        )
        object.__setattr__(
            self, "_default_link", SiteLink(self.base_latency, self.bandwidth)
        )

    def link(self, site: int | None = None) -> SiteLink:
        """The link used for a site (the default when unspecified)."""
        if site is not None and site in self.site_links:
            return self.site_links[site]
        return self._default_link

    def transfer_time(self, size_bytes: float, site: int | None = None) -> float:
        """Minutes to move ``size_bytes`` over one link.

        Even a zero-byte payload pays the link's base latency: an empty
        result still costs a round trip.
        """
        if size_bytes < 0:
            raise ConfigError(f"size_bytes must be >= 0, got {size_bytes}")
        link = self.link(site)
        return link.base_latency + size_bytes / link.bandwidth

    def coordination_time(self, distinct_remote_sites: int) -> float:
        """Minutes of coordination for a query touching that many sites."""
        if distinct_remote_sites < 0:
            raise ConfigError("site count must be >= 0")
        if distinct_remote_sites <= 1:
            return 0.0
        return self.coordination_overhead * (distinct_remote_sites - 1)
