"""Write ``BENCH_scale.json`` — the EXT5 sharded scale-sweep snapshot.

Runs the committed scale sweep (``repro.experiments.scale``): a
10^5-query steady Poisson stream plus burst and pressure schedules,
sharded by conflict group across spawned worker processes, recording
queries/sec, group-formation throughput, p50/p95/p99 window re-opt
latency and peak worker RSS.  The three main schedules run with
telemetry *off* (the ratchet numbers are produced telemetry-free); a
separate reduced ``fleet_smoke`` section re-runs the steady shape with
``--trace``-equivalent instrumentation so the fleet collector's
overhead and checker verdict are pinned too.  Invoked by ``make
bench-scale``; the JSON is the throughput ratchet for ``repro
bench-gate`` (``*_per_sec`` leaves regress when they *drop* past the
tolerance).

Usage::

    PYTHONPATH=src python benchmarks/scale_snapshot.py [output.json]
"""

from __future__ import annotations

import json
import sys
from dataclasses import replace
from pathlib import Path

from repro.experiments.scale import (
    DEFAULT_SCHEDULES,
    ScaleConfig,
    run_schedule,
    run_scale_sweep,
)

#: Stream length of the traced smoke — big enough for every event kind
#: to appear, small enough to keep the benchmark budget flat.
FLEET_SMOKE_QUERIES = 2_000


def fleet_smoke() -> dict:
    """Reduced steady run with the full fleet telemetry stack attached."""
    config = ScaleConfig(trace=True, fleet_metrics=True)
    spec = replace(DEFAULT_SCHEDULES[0], queries=FLEET_SMOKE_QUERIES)
    captured: dict = {}

    def on_fleet(name: str, collector, violations: list) -> None:
        captured["violations"] = len(violations)

    metrics = run_schedule(config, spec, on_fleet=on_fleet)
    fleet = metrics["fleet"]
    shard_ivs = [
        value for key, value in metrics["total_iv"].items()
        if key != "online"
    ]
    return {
        "queries": spec.queries,
        "records": fleet["records"],
        "dropped_events": fleet["dropped_events"],
        "ledger_entries": fleet["ledger_entries"],
        "violations": captured.get("violations", fleet["violations"]),
        "collect_wall_seconds": fleet["collect_wall_seconds"],
        # Bit-exact conservation: the merged ledger's fleet IV must equal
        # the scheduler's own online total, which is the ordered sum of
        # the per-shard totals.
        "iv_bit_exact": fleet["total_iv"] == metrics["total_iv"]["online"]
        == sum(shard_ivs),
    }


def snapshot() -> dict:
    data = run_scale_sweep(ScaleConfig())
    data["fleet_smoke"] = fleet_smoke()
    return data


def main() -> None:
    out = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("BENCH_scale.json")
    data = snapshot()
    out.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {out}")
    print(json.dumps(data, indent=2))


if __name__ == "__main__":
    main()
