"""Figure 9 — The effects of multi-query optimization.

Synthetic data, 100 tables, λ_CL = λ_SL = 0.15.

* **9(a)** — vary the query overlap rate from 10% to 50% with a fixed
  workload size; report the mean information value with and without MQO.
* **9(b)** — vary the number of (fully overlapping) queries from 2 to 14;
  report the same comparison.

Expected shape: the MQO improvement grows with the overlap rate — "when the
rate of overlapping is 50%, MQO is effective in achieving more than 50%
performance gain" — and grows with the number of queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.value import DiscountRates
from repro.experiments.config import SyntheticSetup, sync_interval_for_ratio
from repro.federation.costmodel import CostModel, CostParameters
from repro.federation.catalog import Catalog, TableDef
from repro.federation.sync import build_schedules
from repro.mqo.evaluator import EvaluatorStats
from repro.mqo.ga import GAConfig
from repro.mqo.scheduler import WorkloadScheduler
from repro.reporting.tables import ResultTable
from repro.sim.rng import RandomSource
from repro.workload.generator import overlapping_workload, random_queries

__all__ = ["Fig9Config", "build_mqo_scheduler", "run_fig9a", "run_fig9b"]


@dataclass
class Fig9Config:
    """Parameters of the Figure 9 experiments."""

    num_tables: int = 100
    num_sites: int = 6
    replicated_count: int = 50
    lambda_both: float = 0.15
    ratio_multiplier: float = 10.0
    overlap_rates: tuple[float, ...] = (0.1, 0.2, 0.3, 0.4, 0.5)
    overlap_query_count: int = 12
    query_counts: tuple[int, ...] = (2, 4, 6, 8, 10, 12, 14)
    ga: GAConfig = field(default_factory=GAConfig)
    #: Slower servers than the TPC-H experiments: Figure 9 studies a loaded
    #: system, so contention must bite (calibrated in EXPERIMENTS.md).
    cost_params: CostParameters = field(
        default_factory=lambda: CostParameters(
            local_throughput=1_500.0, remote_throughput=600.0
        )
    )
    seed: int = 11
    workload_seed: int = 23
    overlap_seed: int = 31


def build_mqo_scheduler(
    config: Fig9Config,
) -> tuple[WorkloadScheduler, SyntheticSetup]:
    """Build the catalog/cost-model/scheduler stack for Figure 9."""
    setup = SyntheticSetup(
        num_tables=config.num_tables,
        num_sites=config.num_sites,
        replicated_count=config.replicated_count,
        placement="uniform",
        seed=config.seed,
    )
    placement = setup.placement_map()
    catalog = Catalog()
    for name in setup.instance.table_names:
        catalog.add_table(
            TableDef(name, placement[name], setup.instance.row_counts[name])
        )
    replicated = setup.replicated_for_ivqp()
    source = RandomSource(config.seed, "fig9")
    schedules = build_schedules(
        replicated,
        mode="shared",
        mean_interval=sync_interval_for_ratio(config.ratio_multiplier),
        source=source,
    )
    for name in replicated:
        catalog.add_replica(name, schedules[name])
    cost_model = CostModel(catalog, params=config.cost_params)
    rates = DiscountRates.symmetric(config.lambda_both)
    scheduler = WorkloadScheduler(
        catalog, cost_model, rates, ga_config=config.ga, seed=config.seed
    )
    return scheduler, setup


def run_fig9a(config: Fig9Config | None = None) -> ResultTable:
    """9(a): MQO vs no MQO across overlap rates."""
    config = config or Fig9Config()
    scheduler, setup = build_mqo_scheduler(config)
    queries = random_queries(
        setup.instance, count=config.overlap_query_count,
        seed=config.workload_seed,
    )
    table = ResultTable(
        title="Figure 9(a): mean information value vs overlap rate",
        headers=["overlap_pct", "mqo_iv", "no_mqo_iv", "gain_pct"],
    )
    totals = EvaluatorStats()
    for rate in config.overlap_rates:
        burst = max(2, int(round(rate * len(queries))))
        workload = overlapping_workload(
            queries, rate, seed=config.overlap_seed, burst_size=burst
        )
        mqo = scheduler.schedule(workload)
        fifo = scheduler.fifo(workload)
        gain = _gain_pct(
            mqo.total_information_value, fifo.total_information_value
        )
        table.add(
            int(round(rate * 100)),
            mqo.mean_information_value,
            fifo.mean_information_value,
            gain,
        )
        if mqo.evaluator_stats is not None:
            totals.merge(mqo.evaluator_stats)
    table.add_footnote(f"evaluator: {totals.summary()}")
    return table


def run_fig9b(config: Fig9Config | None = None) -> ResultTable:
    """9(b): MQO vs no MQO across workload sizes (fully overlapping)."""
    config = config or Fig9Config()
    scheduler, setup = build_mqo_scheduler(config)
    table = ResultTable(
        title="Figure 9(b): mean information value vs number of queries",
        headers=["num_queries", "mqo_iv", "no_mqo_iv", "gain_pct"],
    )
    totals = EvaluatorStats()
    for count in config.query_counts:
        queries = random_queries(
            setup.instance, count=count, seed=config.workload_seed
        )
        workload = overlapping_workload(
            queries, overlap_rate=1.0, seed=config.overlap_seed,
            burst_size=count,
        )
        mqo = scheduler.schedule(workload)
        fifo = scheduler.fifo(workload)
        gain = _gain_pct(
            mqo.total_information_value, fifo.total_information_value
        )
        table.add(
            count,
            mqo.mean_information_value,
            fifo.mean_information_value,
            gain,
        )
        if mqo.evaluator_stats is not None:
            totals.merge(mqo.evaluator_stats)
    table.add_footnote(f"evaluator: {totals.summary()}")
    return table


def _gain_pct(mqo_total: float, fifo_total: float) -> float:
    if fifo_total <= 0:
        return 0.0
    return (mqo_total - fifo_total) / fifo_total * 100.0
