"""Property test: a wall-clock run replays bit-identically under SimClock.

This is the contract the whole Clock seam stands on: the online
scheduler's admission/shed/window/dispatch logic is a deterministic
function of the *event sequence* (times, tags, heap interleaving), not of
which clock produced it.  Each test runs a live :class:`QueryService`
under a real :class:`~repro.sim.clocks.WallClock` — real asyncio sleeps,
real submission jitter — then replays the recorded arrival trace through
a :class:`~repro.sim.clocks.SimClock` and requires the *entire* decision
log (admit/shed/defer/requeue, window re-optimizations with their chosen
orders, dispatch starts with begin/completion instants) to match exactly.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.serve.service import QueryService, ServeConfig


async def _live_run(cfg: ServeConfig, schedule: list[tuple[float, int]]):
    """Run a service, submitting ``(delay_minutes, template)`` pairs."""
    service = QueryService(cfg)
    runner = asyncio.create_task(service.run())
    results = []
    for delay_minutes, template in schedule:
        if delay_minutes:
            await asyncio.sleep(delay_minutes * cfg.seconds_per_minute)
        _qid, _decision, result = service.submit(template)
        results.append(result)
    await asyncio.gather(*results)
    service.begin_shutdown()
    await runner
    return service


def config(**overrides) -> ServeConfig:
    base = dict(
        seconds_per_minute=0.01, num_templates=6, ga_generations=5, seed=11,
    )
    base.update(overrides)
    return ServeConfig(**base)


#: (name, schedule) — steady trickle, a burst of simultaneous arrivals,
#: and a mixed pattern that defers against a tight pending bound.
SCHEDULES = [
    ("steady", [(0.0, 0), (1.0, 1), (1.0, 2), (1.0, 3)]),
    ("burst", [(0.0, 0), (0.0, 1), (0.0, 2), (0.0, 3), (0.0, 4)]),
    ("mixed", [(0.0, 0), (0.0, 1), (2.0, 2), (0.0, 3), (0.5, 4), (0.0, 5)]),
]


class TestWallRunReplaysUnderSimClock:
    @pytest.mark.parametrize(
        "schedule", [s for _, s in SCHEDULES], ids=[n for n, _ in SCHEDULES]
    )
    def test_decision_log_is_bit_identical(self, schedule):
        service = asyncio.run(_live_run(config(), schedule))
        live = service.session.decisions
        assert live, "the live run must have made decisions"
        replayed = service.replay()
        assert replayed.decisions == live

    def test_replay_matches_under_admission_pressure(self):
        # A tight pending bound plus an IV floor: the live run sheds and
        # defers, and the replay must shed and defer the same queries.
        cfg = config(max_pending=2, iv_floor=0.05, window=1.0)
        schedule = [(0.0, i % 6) for i in range(8)]
        service = asyncio.run(_live_run(cfg, schedule))
        live = service.session.decisions
        kinds = {entry[0] for entry in live}
        assert "defer" in kinds or "shed" in kinds
        assert service.replay().decisions == live

    def test_replay_is_itself_deterministic(self):
        service = asyncio.run(_live_run(config(), SCHEDULES[0][1]))
        first = service.replay().decisions
        second = service.replay().decisions
        assert first == second == service.session.decisions

    def test_replayed_stats_match_the_live_admission_counts(self):
        service = asyncio.run(_live_run(config(), SCHEDULES[2][1]))
        live, replayed = service.session.stats, service.replay().stats
        assert (
            live.submitted, live.admitted, live.shed,
            live.deferred, live.requeued, live.dispatched,
        ) == (
            replayed.submitted, replayed.admitted, replayed.shed,
            replayed.deferred, replayed.requeued, replayed.dispatched,
        )
