"""Figure 4 — The paper's worked scatter-and-gather example.

Four tables T1..T4 with replicas R1..R4 synchronized at different
frequencies; computation time is 2 when only replicas are used and 4, 6, 8,
10 when 1, 2, 3, 4 base tables are involved; both discount rates are 0.1;
the query is submitted at time 11, when the most recent synchronization is
R3's.  The scatter step evaluates {T1,T2,T3,T4} (CL = SL = 10), giving the
incumbent ``BV × 0.9^10 × 0.9^10`` and the search bound 11 + 20 = 31; the
gather step then walks successive sync points, tightening the bound as
better plans appear.

The schedules below are chosen to match the paper's narration: at t = 11
the staleness order is R4, R1, R2, R3 (R3 synced last, at 8), and the very
next synchronization is R4's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.enumeration import enumerate_plans
from repro.core.optimizer import IVQPOptimizer, SearchDiagnostics
from repro.core.plan import QueryPlan
from repro.core.value import DiscountRates, information_value
from repro.federation.catalog import Catalog, FixedSyncSchedule, TableDef
from repro.federation.costmodel import StaticCostProvider
from repro.reporting.tables import ResultTable
from repro.workload.query import DSSQuery

__all__ = ["Fig4Config", "Fig4Outcome", "build_fig4_world", "run_fig4"]

#: (first sync, period) per table, reproducing the narration's ordering.
_FIG4_SCHEDULES: dict[str, tuple[float, float]] = {
    "T1": (4.0, 9.0),
    "T2": (6.0, 8.0),
    "T3": (8.0, 8.0),
    "T4": (2.0, 10.5),
}

#: Computation time by number of base tables involved (the paper's 2..10).
_FIG4_COSTS: dict[int, float] = {0: 2.0, 1: 4.0, 2: 6.0, 3: 8.0, 4: 10.0}


@dataclass
class Fig4Config:
    """Parameters of the walkthrough (paper defaults)."""

    submit_at: float = 11.0
    discount: float = 0.1
    horizon_periods: int = 6


@dataclass
class Fig4Outcome:
    """Everything the walkthrough demonstrates."""

    chosen: QueryPlan
    oracle: QueryPlan
    scatter_iv: float
    initial_bound: float
    diagnostics: SearchDiagnostics
    candidates: ResultTable = field(repr=False, default=None)  # type: ignore[assignment]


def build_fig4_world(
    config: Fig4Config | None = None,
) -> tuple[Catalog, StaticCostProvider, DSSQuery, DiscountRates]:
    """The Figure 4 catalog, cost assumptions, query and rates."""
    config = config or Fig4Config()
    catalog = Catalog()
    for index, (name, (offset, period)) in enumerate(_FIG4_SCHEDULES.items()):
        catalog.add_table(TableDef(name, site=index, row_count=1_000))
        times = [offset + k * period for k in range(config.horizon_periods)]
        catalog.add_replica(name, FixedSyncSchedule(times, tail_period=period))
    query = DSSQuery(
        query_id=1, name="fig4", tables=tuple(_FIG4_SCHEDULES)
    )
    provider = StaticCostProvider(catalog, dict(_FIG4_COSTS))
    rates = DiscountRates.symmetric(config.discount)
    return catalog, provider, query, rates


def run_fig4(config: Fig4Config | None = None) -> Fig4Outcome:
    """Run the walkthrough: scatter-gather search plus exhaustive check."""
    config = config or Fig4Config()
    catalog, provider, query, rates = build_fig4_world(config)

    scatter_iv = information_value(
        query.business_value, _FIG4_COSTS[4], _FIG4_COSTS[4], rates
    )
    initial_bound = config.submit_at + _FIG4_COSTS[4] * 2  # 11 + 20 = 31

    optimizer = IVQPOptimizer(catalog, provider, rates)
    diagnostics = SearchDiagnostics()
    chosen = optimizer.choose_plan(query, config.submit_at, diagnostics)

    plans = enumerate_plans(
        query, catalog, provider, rates,
        submitted_at=config.submit_at, horizon=initial_bound, exhaustive=True,
    )
    oracle = max(plans, key=lambda plan: plan.information_value)

    candidates = ResultTable(
        title="Figure 4 candidate plans (exhaustive, within initial bound)",
        headers=["start", "remote_tables", "cl", "sl", "iv"],
    )
    top = sorted(plans, key=lambda plan: plan.information_value, reverse=True)
    for plan in top[:12]:
        candidates.add(
            plan.start_time,
            ",".join(sorted(plan.remote_tables)) or "(none)",
            plan.computational_latency,
            plan.synchronization_latency,
            plan.information_value,
        )
    return Fig4Outcome(
        chosen=chosen,
        oracle=oracle,
        scatter_iv=scatter_iv,
        initial_bound=initial_bound,
        diagnostics=diagnostics,
        candidates=candidates,
    )
