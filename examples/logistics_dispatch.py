"""Logistics dispatch center — QoS sync planning + precalculated routing.

A parcel carrier's dispatch center watches shipments, fleet positions and
hub congestion across three regional operation systems.  The dispatch
reports are *registered in advance* (they run all day), which is exactly
the situation where the paper says "information values of all queries can
be pre-calculated for routing" (Section 3.1) — provided a QoS-aware
replication manager keeps the replicas within agreed staleness bounds.

The example:

1. derives synchronization schedules from per-table staleness bounds and
   audits them (`repro.federation.qos`);
2. assigns heavy-tailed business values to the report portfolio
   (`repro.workload.business`);
3. precomputes a routing table for the registered reports and routes a
   day's worth of submissions via table lookup (`repro.core.routing`);
4. shows the hit rate and compares routed IV with live optimization.

Run:  python examples/logistics_dispatch.py
"""

from __future__ import annotations

from repro import DSSQuery, DiscountRates, IVQPOptimizer
from repro.core.routing import PrecomputedRouter, RoutingTable
from repro.federation import (
    Catalog,
    CostModel,
    CostParameters,
    TableDef,
    audit_staleness,
    schedules_for_staleness_bounds,
)
from repro.sim import RandomSource
from repro.workload import assign_business_values

#: Per-table staleness bounds agreed with operations (minutes).
STALENESS_BOUNDS = {
    "shipments": 5.0,       # live tracking: must be fresh
    "fleet_positions": 3.0,  # GPS feed: very fresh
    "hub_congestion": 10.0,
    "driver_shifts": 30.0,   # changes rarely
}


def build_catalog() -> Catalog:
    catalog = Catalog()
    sizes = {
        "shipments": 250_000,
        "fleet_positions": 8_000,
        "hub_congestion": 1_200,
        "driver_shifts": 5_000,
        "orders_east": 90_000,
        "orders_central": 110_000,
        "orders_west": 70_000,
    }
    sites = {
        "orders_east": 0, "orders_central": 1, "orders_west": 2,
        "shipments": 1, "fleet_positions": 0,
        "hub_congestion": 2, "driver_shifts": 1,
    }
    for name, rows in sizes.items():
        catalog.add_table(TableDef(name, sites[name], rows))

    schedules = schedules_for_staleness_bounds(
        STALENESS_BOUNDS, source=RandomSource(21, "logistics")
    )
    for name, schedule in schedules.items():
        catalog.add_replica(name, schedule)
    return catalog


def build_reports() -> list[DSSQuery]:
    reports = [
        DSSQuery(query_id=1, name="late-shipment-alarm",
                 tables=("shipments", "fleet_positions", "hub_congestion")),
        DSSQuery(query_id=2, name="fleet-utilization",
                 tables=("fleet_positions", "driver_shifts")),
        DSSQuery(query_id=3, name="regional-backlog-east",
                 tables=("orders_east", "shipments", "hub_congestion")),
        DSSQuery(query_id=4, name="regional-backlog-west",
                 tables=("orders_west", "shipments", "hub_congestion")),
        DSSQuery(query_id=5, name="network-health",
                 tables=("orders_east", "orders_central", "orders_west",
                         "hub_congestion")),
    ]
    return assign_business_values(reports, "by_footprint", scale=2.0)


def main() -> None:
    catalog = build_catalog()
    rates = DiscountRates(computational=0.06, synchronization=0.10)
    cost_model = CostModel(
        catalog,
        params=CostParameters(local_throughput=300_000.0,
                              remote_throughput=120_000.0),
    )

    # 1. QoS audit: the schedules must honour the agreed bounds.
    audits = audit_staleness(catalog, STALENESS_BOUNDS, horizon=240.0)
    print("QoS audit (4-hour horizon):")
    for audit in audits:
        status = "OK " if audit.compliant else "VIOLATED"
        print(f"  {status} {audit.table:<16} bound={audit.bound:5.1f}m "
              f"worst gap={audit.worst_gap:5.2f}m "
              f"({audit.sync_count} syncs)")
    assert all(audit.compliant for audit in audits)

    # 2. Register the day's report portfolio in a routing table.
    reports = build_reports()
    table = RoutingTable(catalog, cost_model, rates, horizon=240.0)
    intervals = table.register_all(reports)
    print(f"\nRouting table: {table.registered} registered reports, "
          f"{intervals} precomputed intervals")

    # 3. A day of dispatch: route many submissions by lookup.
    router = PrecomputedRouter(table)
    optimizer = IVQPOptimizer(catalog, cost_model, rates)
    submissions = [(report, 13.0 + 9.7 * k) for k in range(20)
                   for report in reports]
    routed_iv = live_iv = 0.0
    for report, submit in submissions:
        routed_iv += router.choose_plan(report, submit).information_value
        live_iv += optimizer.choose_plan(report, submit).information_value

    print(f"\n{len(submissions)} routed submissions:")
    print(f"  routed IV : {routed_iv:9.3f}")
    print(f"  live IV   : {live_iv:9.3f} "
          f"({routed_iv / live_iv:.1%} of the live optimum)")
    print(f"  hit rate  : {table.stats.hit_rate:.1%} "
          f"({table.stats.fallbacks} fallbacks)")

    sample = router.choose_plan(reports[0], 37.0)
    print(f"\nSample decision for {reports[0].name!r} at t=37:")
    print(f"  {sample.describe()}")


if __name__ == "__main__":
    main()
