"""Terminal dashboard and HTML report for live telemetry runs.

Pure renderers: they take the JSON-ready artifacts a live run produced —
registry snapshots (:meth:`repro.obs.live.LiveRegistry.snapshot`), the
SLO monitor's alert log, optionally a wall-clock profile table — and
return text/HTML.  No simulation state is touched, so the same functions
render a finished run or a mid-run snapshot equally well.
"""

from __future__ import annotations

import html
import json
import typing

if typing.TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.slo import Alert

__all__ = [
    "render_dashboard",
    "render_alert_log",
    "render_fleet_dashboard",
    "live_report_html",
    "fleet_report_html",
]


def _rule(width: int = 64) -> str:
    return "-" * width


def _section(title: str, rows: dict[str, float]) -> list[str]:
    lines = [title, _rule()]
    for key in sorted(rows):
        value = rows[key]
        rendered = f"{value:.4f}" if isinstance(value, float) else str(value)
        lines.append(f"  {key:<40} {rendered:>18}")
    return lines


#: Per-table sync gauge keys rendered as dashboard columns, in order.
_TABLE_COLUMNS = (
    ("sync.table.staleness", "staleness"),
    ("sync.table.divergence", "divergence"),
    ("sync.table.update_rate", "rate/min"),
    ("sync.table.syncs", "syncs"),
)


def _table_sync_section(tables: dict[str, dict[str, float]]) -> list[str]:
    """The per-table replication block (one row per table)."""
    header = f"  {'table':<16}" + "".join(
        f" {label:>12}" for _, label in _TABLE_COLUMNS
    )
    lines = ["replica sync (per table)", _rule(), header]
    for name in sorted(tables):
        gauges = tables[name]
        lines.append(
            f"  {name:<16}"
            + "".join(
                f" {gauges.get(key, 0.0):>12.4f}" for key, _ in _TABLE_COLUMNS
            )
        )
    return lines


def render_dashboard(
    snapshot: dict,
    alerts: "list[Alert] | None" = None,
    profile_table: str | None = None,
) -> str:
    """One live snapshot as an aligned terminal dashboard.

    Sections mirror the snapshot layout (gauges, rates, quantiles,
    counters, per-table sync state), followed by the alert log and, when
    provided, the wall-clock attribution table.
    """
    lines: list[str] = [
        f"live dashboard @ t={snapshot.get('time', 0.0):.2f} min",
        "",
    ]
    for title, key in (
        ("gauges", "gauges"),
        ("rates (per min)", "rates"),
        ("quantiles", "quantiles"),
        ("counters", "counters"),
    ):
        table = snapshot.get(key) or {}
        if table:
            lines.extend(_section(title, table))
            lines.append("")
    tables = snapshot.get("tables") or {}
    if tables:
        lines.extend(_table_sync_section(tables))
        lines.append("")
    if alerts is not None:
        lines.append(render_alert_log(alerts))
        lines.append("")
    if profile_table:
        lines.extend(["wall-clock profile", _rule(), profile_table])
    return "\n".join(lines).rstrip() + "\n"


#: Shard-panel summary keys rendered as columns, in order.
_PANEL_COLUMNS = (
    "queries", "dispatched", "shed", "deferred",
    "records", "dropped_events", "ledger_entries",
)


def render_fleet_dashboard(snapshot: dict, title: str = "fleet") -> str:
    """A :meth:`~repro.obs.fleet.FleetCollector.snapshot` as terminal text.

    One summary row per shard (scheduler totals, trace coverage, dropped
    events), the fleet's bit-exact totals, then the merged registry's
    sections when a registry was shipped (rates/quantiles/counters plus
    the per-table sync block).
    """
    shards = snapshot.get("shards") or []
    fleet = snapshot.get("fleet") or {}
    lines: list[str] = [
        f"fleet dashboard: {title} "
        f"({fleet.get('shards', len(shards))} shards)",
        "",
        "shard panels",
        _rule(),
        f"  {'shard':<8}" + "".join(
            f" {column:>14}" for column in _PANEL_COLUMNS
        ) + f" {'total_iv':>16}",
    ]
    for panel in shards:
        lines.append(
            f"  {panel.get('shard', '?'):<8}"
            + "".join(
                f" {panel.get(column, 0):>14}" for column in _PANEL_COLUMNS
            )
            + f" {panel.get('ledger_iv', 0.0):>16.4f}"
        )
    lines.append("")
    fleet_rows = {
        key: value
        for key, value in fleet.items()
        if isinstance(value, (int, float)) and not isinstance(value, bool)
    }
    lines.extend(_section("fleet totals", fleet_rows))
    lines.append("")
    registry = snapshot.get("registry")
    if registry:
        lines.extend(_section(
            "merged rates (per min)", registry.get("rates") or {}
        ))
        lines.append("")
        lines.extend(_section(
            "merged quantiles", registry.get("quantiles") or {}
        ))
        lines.append("")
        lines.extend(_section("merged counters", registry.get("counters") or {}))
        lines.append("")
        tables = registry.get("tables") or {}
        if tables:
            lines.extend(_table_sync_section(tables))
            lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def render_alert_log(alerts: "list[Alert]") -> str:
    """The alert history as one line per breach window."""
    if not alerts:
        return "alerts\n" + _rule() + "\n  (none fired)"
    lines = ["alerts", _rule()]
    for alert in alerts:
        if alert.closed_at is None:
            span = f"opened {alert.opened_at:8.2f}   still open"
        else:
            span = (
                f"opened {alert.opened_at:8.2f}   closed {alert.closed_at:8.2f}"
            )
        lines.append(f"  {alert.rule:<24} {span}   value {alert.value:.4f}")
    return "\n".join(lines)


def _html_table(headers: list[str], rows: list[list[str]]) -> str:
    head = "".join(f"<th>{html.escape(cell)}</th>" for cell in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{html.escape(cell)}</td>" for cell in row) + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


def live_report_html(
    snapshots: list[dict],
    alerts: "list[Alert]",
    profile: dict[str, dict[str, float]] | None = None,
    metrics: dict | None = None,
    title: str = "Live telemetry report",
) -> str:
    """A self-contained HTML report of one live run.

    ``snapshots`` is the sampled snapshot time series (last = final
    state), ``profile`` a wall-clock attribution table
    (:meth:`~repro.obs.profile.WallProfiler.attribution`), ``metrics``
    the post-hoc registry snapshot for cross-checking.  Everything is
    inlined — no external assets — so the file can be archived with a CI
    run.
    """
    final = snapshots[-1] if snapshots else {}
    parts: list[str] = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        "<style>",
        "body{font-family:monospace;margin:2em;background:#fafafa}",
        "table{border-collapse:collapse;margin:1em 0}",
        "td,th{border:1px solid #999;padding:2px 8px;text-align:right}",
        "th{background:#eee}td:first-child,th:first-child{text-align:left}",
        ".open{color:#a00;font-weight:bold}.closed{color:#060}",
        "</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p>final sim time t={final.get('time', 0.0):.2f} min, "
        f"{len(snapshots)} sampled snapshots, {len(alerts)} alerts</p>",
    ]

    parts.append("<h2>Alerts</h2>")
    if alerts:
        parts.append(_html_table(
            ["rule", "opened", "closed", "open value", "close value"],
            [
                [
                    alert.rule,
                    f"{alert.opened_at:.2f}",
                    "open" if alert.closed_at is None
                    else f"{alert.closed_at:.2f}",
                    f"{alert.value:.4f}",
                    "" if alert.close_value is None
                    else f"{alert.close_value:.4f}",
                ]
                for alert in alerts
            ],
        ))
    else:
        parts.append("<p>(none fired)</p>")

    for section in ("gauges", "rates", "quantiles", "counters"):
        table = final.get(section) or {}
        if not table:
            continue
        parts.append(f"<h2>Final {section}</h2>")
        parts.append(_html_table(
            ["metric", "value"],
            [[key, f"{table[key]:.4f}"] for key in sorted(table)],
        ))

    # Sampled time series: one row per snapshot, gauges as columns.
    gauge_keys = sorted({
        key for snapshot in snapshots
        for key in (snapshot.get("gauges") or {})
    })
    if snapshots and gauge_keys:
        parts.append("<h2>Sampled gauges over sim time</h2>")
        parts.append(_html_table(
            ["t (min)", *gauge_keys],
            [
                [f"{snapshot.get('time', 0.0):.2f}"] + [
                    f"{(snapshot.get('gauges') or {}).get(key, float('nan')):.4f}"
                    for key in gauge_keys
                ]
                for snapshot in snapshots
            ],
        ))

    if profile:
        parts.append("<h2>Wall-clock profile</h2>")
        parts.append(_html_table(
            ["phase", "calls", "total (s)", "self (s)", "mean (ms)"],
            [
                [
                    name,
                    f"{row['calls']:.0f}",
                    f"{row['total_s']:.4f}",
                    f"{row['self_s']:.4f}",
                    f"{row['mean_ms']:.3f}",
                ]
                for name, row in sorted(
                    profile.items(), key=lambda item: -item[1]["self_s"]
                )
            ],
        ))

    if metrics is not None:
        parts.append("<h2>Post-hoc metrics registry</h2>")
        parts.append(
            "<pre>" + html.escape(json.dumps(metrics, indent=2, sort_keys=True))
            + "</pre>"
        )

    parts.append("</body></html>")
    return "\n".join(parts)


def fleet_report_html(snapshot: dict, title: str = "Fleet telemetry report") -> str:
    """A self-contained HTML report of one fleet collection.

    ``snapshot`` is :meth:`~repro.obs.fleet.FleetCollector.snapshot`:
    per-shard panels render as one table row each, the fleet totals and
    (when shipped) the merged registry — including the per-table sync
    block — as their own sections.  No external assets, same archival
    contract as :func:`live_report_html`.
    """
    shards = snapshot.get("shards") or []
    fleet = snapshot.get("fleet") or {}
    parts: list[str] = [
        "<!doctype html><html><head><meta charset='utf-8'>",
        f"<title>{html.escape(title)}</title>",
        "<style>",
        "body{font-family:monospace;margin:2em;background:#fafafa}",
        "table{border-collapse:collapse;margin:1em 0}",
        "td,th{border:1px solid #999;padding:2px 8px;text-align:right}",
        "th{background:#eee}td:first-child,th:first-child{text-align:left}",
        "</style></head><body>",
        f"<h1>{html.escape(title)}</h1>",
        f"<p>{fleet.get('shards', len(shards))} shards, "
        f"{fleet.get('records', 0)} trace records, "
        f"{fleet.get('dropped_events', 0)} dropped events</p>",
        "<h2>Shard panels</h2>",
        _html_table(
            ["shard", *_PANEL_COLUMNS, "ledger_iv"],
            [
                [str(panel.get("shard", "?"))]
                + [str(panel.get(column, 0)) for column in _PANEL_COLUMNS]
                + [f"{panel.get('ledger_iv', 0.0):.4f}"]
                for panel in shards
            ],
        ),
        "<h2>Fleet totals</h2>",
        _html_table(
            ["metric", "value"],
            [
                [key, f"{value:.4f}" if isinstance(value, float) else str(value)]
                for key, value in sorted(fleet.items())
                if isinstance(value, (int, float)) and not isinstance(value, bool)
            ],
        ),
    ]
    registry = snapshot.get("registry")
    if registry:
        for section in ("gauges", "rates", "quantiles", "counters"):
            table = registry.get(section) or {}
            if not table:
                continue
            parts.append(f"<h2>Merged {section}</h2>")
            parts.append(_html_table(
                ["metric", "value"],
                [[key, f"{table[key]:.4f}"] for key in sorted(table)],
            ))
        tables = registry.get("tables") or {}
        if tables:
            parts.append("<h2>Replica sync (per table)</h2>")
            parts.append(_html_table(
                ["table", *(label for _, label in _TABLE_COLUMNS)],
                [
                    [name] + [
                        f"{tables[name].get(key, 0.0):.4f}"
                        for key, _ in _TABLE_COLUMNS
                    ]
                    for name in sorted(tables)
                ],
            ))
    parts.append("</body></html>")
    return "\n".join(parts)
