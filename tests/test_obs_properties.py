"""Property tests: observability invariants hold over randomized systems.

Hypothesis drives randomized federations (table layouts, replication
choices, sync cadences, discount rates, submission times, fault plans)
and asserts the three ledger/trace invariants the ISSUE locks down:

1. recomputing IV from the audit ledger is *bit-identical* to the IV the
   executor reported,
2. computational latency is conserved — the phase decomposition sums back
   to CL within the checker's tolerance,
3. every query's lifecycle events appear in causal order (and the full
   TraceChecker rule set finds nothing to complain about).
"""

from __future__ import annotations

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.baselines import ivqp_router
from repro.core.value import DiscountRates, information_value
from repro.federation.executor import ExecutionPolicy
from repro.federation.faults import FaultPlan
from repro.federation.system import SystemConfig, TableSpec, build_system
from repro.obs import TraceChecker, events
from repro.obs.checker import _RANK
from repro.obs.ledger import CONSERVATION_TOLERANCE
from repro.workload.query import DSSQuery

pytestmark = pytest.mark.slow

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


# Rates so close to zero that ``1 - rate == 1.0`` in floating point make the
# discount degenerate; real configurations never use them, so draw either an
# exact zero or a representable rate.
discount_rates = st.one_of(
    st.just(0.0),
    st.floats(min_value=1e-6, max_value=0.3, allow_nan=False),
)


@st.composite
def federations(draw):
    """A small randomized federation plus a workload to run through it."""
    num_tables = draw(st.integers(min_value=1, max_value=4))
    num_sites = draw(st.integers(min_value=1, max_value=3))
    tables = [
        TableSpec(
            name=f"t{index}",
            site=draw(st.integers(min_value=0, max_value=num_sites - 1)),
            row_count=draw(st.integers(min_value=100, max_value=50_000)),
        )
        for index in range(num_tables)
    ]
    replicated = [
        spec.name for spec in tables if draw(st.booleans())
    ]
    config = SystemConfig(
        tables=tables,
        replicated=replicated,
        sync_mode=draw(st.sampled_from(["periodic", "exponential", "shared"])),
        sync_mean_interval=draw(
            st.floats(min_value=0.5, max_value=30.0, allow_nan=False)
        ),
        rates=DiscountRates(draw(discount_rates), draw(discount_rates)),
        trace=True,
        seed=draw(st.integers(min_value=0, max_value=2**16)),
    )
    num_queries = draw(st.integers(min_value=1, max_value=6))
    submissions = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
            min_size=num_queries,
            max_size=num_queries,
        )
    )
    queries = []
    for qid, at in enumerate(submissions):
        touched = draw(
            st.lists(
                st.sampled_from([spec.name for spec in tables]),
                min_size=1,
                max_size=num_tables,
                unique=True,
            )
        )
        queries.append((DSSQuery(query_id=qid, name=f"q{qid}", tables=tuple(touched)), at))
    return config, queries


@st.composite
def faulty_federations(draw):
    """A federation whose config also carries a generated fault plan."""
    config, queries = draw(federations())
    site_ids = sorted({spec.site for spec in config.tables})
    config.fault_plan = FaultPlan.generate(
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        horizon=500.0,
        site_ids=site_ids,
        outage_rate=draw(st.floats(min_value=0.0, max_value=0.05, allow_nan=False)),
        outage_mean_duration=draw(
            st.floats(min_value=1.0, max_value=20.0, allow_nan=False)
        ),
        sync_skip_prob=draw(st.floats(min_value=0.0, max_value=0.3, allow_nan=False)),
        sync_delay_prob=draw(st.floats(min_value=0.0, max_value=0.3, allow_nan=False)),
    )
    config.execution_policy = ExecutionPolicy(
        max_retries=draw(st.integers(min_value=0, max_value=3)),
        retry_backoff=0.5,
        failover=draw(st.booleans()),
    )
    return config, queries


def run(config, queries):
    system = build_system(config, ivqp_router)
    for query, at in queries:
        system.submit(query, at=at)
    system.run()
    return system


class TestLedgerProperties:
    @SETTINGS
    @given(federations())
    def test_recomputed_iv_is_bit_identical(self, federation):
        system = run(*federation)
        assert system.ledger, "every run must produce ledger entries"
        for entry in system.ledger:
            assert entry.recompute_iv() == entry.reported_iv
            # And the recomputation really is the paper's formula applied
            # to the ledger's own latencies.
            if not entry.failed:
                assert entry.reported_iv == information_value(
                    entry.business_value,
                    entry.computational_latency,
                    entry.synchronization_latency,
                    entry.rates,
                )

    @SETTINGS
    @given(federations())
    def test_cl_is_conserved_across_phases(self, federation):
        system = run(*federation)
        for entry in system.ledger:
            assert abs(entry.phase_sum - entry.computational_latency) <= (
                CONSERVATION_TOLERANCE
            )
            for phase in (
                entry.scheduled_delay,
                entry.remote_phase,
                entry.queue_wait,
                entry.processing,
                entry.transfer,
            ):
                assert phase >= 0.0

    @SETTINGS
    @given(faulty_federations())
    def test_invariants_survive_fault_injection(self, federation):
        system = run(*federation)
        for entry in system.ledger:
            assert entry.recompute_iv() == entry.reported_iv
        TraceChecker().assert_clean(system.tracer.records)


class TestCausalOrdering:
    @SETTINGS
    @given(federations())
    def test_lifecycle_events_are_causally_ordered(self, federation):
        system = run(*federation)
        last_rank: dict[int, int] = {}
        for record in system.tracer.records:
            if record.kind not in _RANK:
                continue
            qid = record.detail.get("qid")
            rank = _RANK[record.kind]
            assert rank >= last_rank.get(qid, -1), (
                f"{record.kind} out of order for query {qid}"
            )
            last_rank[qid] = rank

    @SETTINGS
    @given(federations())
    def test_full_checker_finds_nothing(self, federation):
        system = run(*federation)
        assert TraceChecker().check(system.tracer.records) == []
