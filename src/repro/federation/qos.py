"""QoS-aware synchronization planning.

Section 3.1 assumes "a QoS aware replication manager is deployed to ensure
updates to a table propagated to its replica in DSS within a pre-defined
time frame".  This module turns such per-table staleness bounds into
concrete synchronization schedules and audits existing schedules against
the bounds:

* :func:`schedules_for_staleness_bounds` — periodic schedules whose period
  equals the bound (a replica's staleness just before a refresh equals the
  period, so the bound holds with equality at the worst point);
* :func:`audit_staleness` — measure the worst observed inter-sync gap per
  replica over a horizon and compare it with a bound.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.federation.catalog import Catalog, StreamSyncSchedule, SyncSchedule
from repro.sim.rng import RandomSource

__all__ = ["StalenessAudit", "schedules_for_staleness_bounds", "audit_staleness"]


def schedules_for_staleness_bounds(
    bounds: Mapping[str, float],
    source: RandomSource | None = None,
) -> dict[str, SyncSchedule]:
    """Periodic schedules meeting per-table staleness bounds.

    Each table gets a period equal to its bound; phases are staggered (when
    a ``source`` is given) so refreshes do not align and hammer the
    replication channel all at once.
    """
    if not bounds:
        raise ConfigError("need at least one staleness bound")
    schedules: dict[str, SyncSchedule] = {}
    for name, bound in bounds.items():
        if bound <= 0:
            raise ConfigError(f"staleness bound for {name!r} must be > 0")
        offset = (
            source.spawn(f"qos/{name}").uniform(0.0, bound)
            if source is not None
            else bound
        )
        schedules[name] = StreamSyncSchedule.periodic(
            bound, offset=max(offset, 1e-6)
        )
    return schedules


@dataclass(frozen=True)
class StalenessAudit:
    """Worst-case staleness of one replica over an audited horizon."""

    table: str
    bound: float
    worst_gap: float
    sync_count: int

    @property
    def compliant(self) -> bool:
        """Whether the worst gap stayed within the bound."""
        return self.worst_gap <= self.bound + 1e-9


def audit_staleness(
    catalog: Catalog,
    bounds: Mapping[str, float],
    horizon: float,
    tables: Sequence[str] | None = None,
) -> list[StalenessAudit]:
    """Audit replicas' schedules against staleness bounds over ``[0, horizon]``.

    The worst gap counts the stretch from one completion (or the replica's
    initial timestamp) to the next completion — the staleness a query
    reading just before that refresh would see.
    """
    if horizon <= 0:
        raise ConfigError("audit horizon must be > 0")
    names = list(tables) if tables is not None else catalog.replicated_tables
    audits = []
    for name in names:
        replica = catalog.replica(name)
        if replica is None:
            raise ConfigError(f"table {name!r} has no replica to audit")
        bound = bounds.get(name)
        if bound is None:
            raise ConfigError(f"no staleness bound given for {name!r}")
        completions = replica.schedule.completions_between(0.0, horizon)
        worst = 0.0
        previous = replica.initial_timestamp
        for completion in completions:
            worst = max(worst, completion - previous)
            previous = completion
        worst = max(worst, horizon - previous)
        audits.append(
            StalenessAudit(
                table=name,
                bound=bound,
                worst_gap=worst,
                sync_count=len(completions),
            )
        )
    return audits
