"""End-to-end tests: the wall-clock serving runtime over real sockets.

Every test spins up the full stack — :class:`QueryService` popping a
:class:`~repro.sim.clocks.WallClock` inside asyncio, fronted by the
stdlib HTTP server on an ephemeral port — and drives it through the
client helper, exactly the way ``python -m repro serve`` is used.  Stream
time is compressed (10 ms per stream minute) so the whole file runs in
seconds while exercising the same scheduling decisions as real time.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.errors import WorkloadError
from repro.obs import events
from repro.serve import HTTPServer, QueryService, ServeConfig, http_request
from repro.serve.bench import ServeBenchConfig, percentile, serve_bench, serve_smoke


def config(**overrides) -> ServeConfig:
    base = dict(
        seconds_per_minute=0.01, num_templates=6, ga_generations=5, seed=11,
    )
    base.update(overrides)
    return ServeConfig(**base)


async def _with_server(cfg, body):
    """Start a service + server, run ``body(service, host, port)``, drain."""
    service = QueryService(cfg)
    server = HTTPServer(service, port=0)
    await server.start()
    try:
        host, port = server.address
        await body(service, host, port)
    finally:
        await server.stop()
    return service


class TestHTTPRoundTrips:
    def test_concurrent_submissions_complete_with_ledgers(self):
        async def body(service, host, port):
            responses = await asyncio.gather(*(
                http_request(host, port, "POST", "/submit", {"template": i % 6})
                for i in range(5)
            ))
            for status, payload in responses:
                assert status == 200
                assert payload["outcome"] == "completed"
                ledger = payload["ledger"]
                assert ledger["reported_iv"] == payload["iv"]
                assert ledger["completed_at"] == payload["completed_at"]

        service = asyncio.run(_with_server(config(), body))
        assert service.check_trace() == []
        assert len(service.results) == 5

    def test_submit_by_template_name(self):
        async def body(service, host, port):
            name = service.templates[0].name
            status, payload = await http_request(
                host, port, "POST", "/submit", {"template": name}
            )
            assert status == 200
            assert payload["query"] == name

        asyncio.run(_with_server(config(), body))

    def test_unknown_template_is_a_400(self):
        async def body(service, host, port):
            status, payload = await http_request(
                host, port, "POST", "/submit", {"template": "nope"}
            )
            assert status == 400 and "unknown template" in payload["error"]
            status, payload = await http_request(
                host, port, "POST", "/submit", {"template": 999}
            )
            assert status == 400 and "out of range" in payload["error"]

        asyncio.run(_with_server(config(), body))

    def test_fire_and_forget_then_result_endpoint(self):
        async def body(service, host, port):
            status, payload = await http_request(
                host, port, "POST", "/submit", {"template": 1, "wait": False}
            )
            assert status == 200 and payload["outcome"] in (
                "admitted", "deferred",
            )
            status, result = await http_request(
                host, port, "GET", f"/result/{payload['qid']}"
            )
            assert status == 200 and result["outcome"] == "completed"

        asyncio.run(_with_server(config(), body))

    def test_unknown_qid_is_a_404_and_bad_qid_a_400(self):
        async def body(service, host, port):
            status, _ = await http_request(host, port, "GET", "/result/123")
            assert status == 404
            status, _ = await http_request(host, port, "GET", "/result/abc")
            assert status == 400

        asyncio.run(_with_server(config(), body))

    def test_metrics_status_and_healthz(self):
        async def body(service, host, port):
            await http_request(host, port, "POST", "/submit", {"template": 0})
            status, metrics = await http_request(host, port, "GET", "/metrics")
            assert status == 200
            assert metrics["counters"]["query.submitted"] >= 1
            status, page = await http_request(host, port, "GET", "/status")
            assert status == 200 and "live status" in page
            status, health = await http_request(host, port, "GET", "/healthz")
            assert status == 200 and health["ok"] is True
            status, _ = await http_request(host, port, "GET", "/nope")
            assert status == 404

        asyncio.run(_with_server(config(), body))


class TestAdmissionOverHTTP:
    def test_absurd_iv_floor_sheds_everything(self):
        async def body(service, host, port):
            status, payload = await http_request(
                host, port, "POST", "/submit", {"template": 0}
            )
            assert status == 200 and payload["outcome"] == "shed"

        service = asyncio.run(_with_server(config(iv_floor=1e9), body))
        # A shed query never enters the system: no lifecycle events, and
        # the trace still audits clean (no dangling submit).
        kinds = [record.kind for record in service.tracer.records]
        assert events.SUBMIT not in kinds
        assert events.MQO_SHED in kinds
        assert service.check_trace() == []

    def test_draining_service_refuses_submissions(self):
        async def body(service, host, port):
            service.begin_shutdown()
            status, payload = await http_request(
                host, port, "POST", "/submit", {"template": 0}
            )
            assert status == 503 and "draining" in payload["error"]
            with pytest.raises(WorkloadError):
                service.submit(0)

        asyncio.run(_with_server(config(), body))


class TestShutdownContracts:
    def test_drained_trace_is_checker_clean_and_replay_equal(self):
        async def body(service, host, port):
            await asyncio.gather(*(
                http_request(host, port, "POST", "/submit", {"template": i % 6})
                for i in range(4)
            ))

        service = asyncio.run(_with_server(config(), body))
        assert service.check_trace() == []
        assert service.replay().decisions == service.session.decisions

    def test_no_alert_dangles_open_after_shutdown(self):
        async def body(service, host, port):
            await http_request(host, port, "POST", "/submit", {"template": 0})

        service = asyncio.run(_with_server(config(), body))
        assert service.monitor is not None
        assert service.monitor.open_alerts == []


class TestDurabilityOverHTTP:
    async def _with_journaled_server(self, journal, body):
        service = QueryService(config(), journal=journal)
        server = HTTPServer(service, port=0)
        await server.start()
        try:
            host, port = server.address
            await body(service, host, port)
        finally:
            await server.stop()
        return service

    def test_checkpoint_endpoint_snapshots_the_journal(self, tmp_path):
        from repro.durable import read_journal

        journal = tmp_path / "serve.journal"

        async def body(service, host, port):
            await http_request(host, port, "POST", "/submit", {"template": 0})
            status, payload = await http_request(
                host, port, "POST", "/checkpoint"
            )
            assert status == 200
            assert payload["ok"] is True
            assert payload["pops"] > 0
            assert payload["journal_bytes"] >= payload["offset"]

        asyncio.run(self._with_journaled_server(journal, body))
        kinds = [p["kind"] for p, _ in read_journal(journal)]
        assert kinds[0] == "header"
        assert "snapshot" in kinds
        assert kinds.count("stop") == 1

    def test_checkpoint_without_a_journal_is_a_400(self):
        async def body(service, host, port):
            status, payload = await http_request(
                host, port, "POST", "/checkpoint"
            )
            assert status == 400
            assert "journal" in payload["error"]

        asyncio.run(_with_server(config(), body))

    def test_shutdown_with_in_flight_submit_journals_then_resolves(
        self, tmp_path
    ):
        # A submission accepted before the drain began must resolve its
        # futures *and* leave a durable arrival record — never be dropped
        # on the floor because shutdown raced it.
        from repro.durable import read_journal

        journal = tmp_path / "serve.journal"

        async def body(service, host, port):
            task = asyncio.create_task(http_request(
                host, port, "POST", "/submit", {"template": 0}
            ))
            while not service.arrival_log:  # accepted + journaled
                await asyncio.sleep(0.001)
            service.begin_shutdown()
            status, payload = await task
            assert status == 200
            assert "outcome" in payload or "qid" in payload

        service = asyncio.run(self._with_journaled_server(journal, body))
        assert service.check_trace() == []
        records = [p for p, _ in read_journal(journal)]
        kinds = [p["kind"] for p in records]
        assert kinds.count("arrival") == 1
        # begin_shutdown ran twice (test + server.stop); the stop record
        # must still be journaled exactly once.
        assert kinds.count("stop") == 1


class TestShutdownEdges:
    def test_wallclock_stop_is_idempotent(self):
        from repro.sim.clocks import WallClock

        async def body():
            clock = WallClock(seconds_per_minute=0.01)
            clock.push(0.0, "tick", 1)
            clock.stop()
            clock.stop()  # second stop: no error, still draining
            assert await clock.wait_pop() == (0.0, "tick", 1)
            assert await clock.wait_pop() is None
            clock.stop()  # stop after drain is also safe
            assert await clock.wait_pop() is None

        asyncio.run(body())

    def test_begin_shutdown_is_idempotent_on_the_service(self):
        async def body(service, host, port):
            service.begin_shutdown()
            first = service._stop_pops
            service.begin_shutdown()
            assert service._stop_pops == first
            assert not service.accepting

        asyncio.run(_with_server(config(), body))


class TestServeBenchHarness:
    def test_percentile_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0.0) == 10.0
        assert percentile(values, 0.5) == 30.0
        assert percentile(values, 1.0) == 40.0
        with pytest.raises(Exception):
            percentile([], 0.5)

    def test_smoke_passes(self):
        assert asyncio.run(serve_smoke()) == 0

    @pytest.mark.slow
    def test_bench_shape_matches_the_committed_snapshot(self):
        data = asyncio.run(serve_bench(ServeBenchConfig(
            baseline_queries=4, overload_queries=4,
        )))
        for phase in ("baseline", "overload"):
            for key in (
                "queries", "shed_rate", "qps", "iv_total",
                "latency_p50_ms", "latency_p95_ms", "latency_p99_ms",
            ):
                assert key in data[phase]
        assert data["trace"]["violations"] == 0
        assert data["trace"]["replay_equal"] is True
