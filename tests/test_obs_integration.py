"""Acceptance tests for the observability layer (ISSUE acceptance criteria).

Three end-to-end guarantees, each on a realistically-sized run:

* a fig5-scale TPC-H stream where every reported IV is recomputable from
  the audit ledger *bit-identically* and the full trace passes the
  TraceChecker,
* the EXT3-style fault-injected run (site outages, sync skips/slips,
  retries, failovers) produces a checker-clean trace,
* turning tracing off changes nothing: outcomes are bit-identical with
  and without the observability layer.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.value import DiscountRates
from repro.experiments.config import TpchSetup, sync_interval_for_ratio
from repro.experiments.runner import run_stream
from repro.experiments.trace_scenarios import trace_faults
from repro.obs import TraceChecker, events, ledger_from_records

pytestmark = pytest.mark.slow


def fig5_scale_config():
    setup = TpchSetup(scale=0.0005, seed=7)
    config = setup.system_config(
        approach="ivqp",
        rates=DiscountRates.symmetric(0.05),
        sync_mean_interval=sync_interval_for_ratio(10.0),
        seed=1,
    )
    return setup, config


def run_fig5_scale(trace: bool):
    setup, config = fig5_scale_config()
    return run_stream(
        config,
        approach="ivqp",
        queries=setup.queries(),
        mean_interarrival=10.0,
        trace=trace,
    )


class TestFig5ScaleTracedRun:
    @pytest.fixture(scope="class")
    def traced(self):
        return run_fig5_scale(trace=True)

    def test_every_reported_iv_recomputes_bit_identically(self, traced):
        assert len(traced.ledger) == len(traced.outcomes)
        by_qid = {entry.query_id: entry for entry in traced.ledger}
        for outcome in traced.outcomes:
            entry = by_qid[outcome.query.query_id]
            assert entry.recompute_iv() == outcome.information_value
            assert entry.reported_iv == outcome.information_value

    def test_trace_is_checker_clean(self, traced):
        assert TraceChecker().check(traced.tracer.records) == []

    def test_ledger_survives_serialization_bit_identically(self, traced):
        from repro.obs import from_jsonl, to_jsonl

        revived = ledger_from_records(from_jsonl(to_jsonl(traced.tracer.records)))
        assert revived == traced.ledger
        for entry in revived:
            assert entry.recompute_iv() == entry.reported_iv


class TestFaultInjectedRun:
    @pytest.fixture(scope="class")
    def system(self):
        return trace_faults(outage_rate=0.02)

    def test_faults_actually_fired(self, system):
        kinds = {record.kind for record in system.tracer.records}
        assert events.FAULT_DOWN in kinds
        assert kinds & {events.SYNC_SKIP, events.SYNC_DELAY}

    def test_trace_is_checker_clean_under_faults(self, system):
        assert TraceChecker().check(system.tracer.records) == []

    def test_degraded_queries_still_recompute_exactly(self, system):
        assert system.ledger
        for entry in system.ledger:
            assert entry.recompute_iv() == entry.reported_iv


class TestTracingIsPureBookkeeping:
    def test_outcomes_bit_identical_with_tracing_off(self):
        traced = run_fig5_scale(trace=True)
        plain = run_fig5_scale(trace=False)
        assert plain.tracer is None and plain.ledger == []
        assert traced.mean_iv == plain.mean_iv
        assert traced.mean_cl == plain.mean_cl
        assert traced.mean_sl == plain.mean_sl
        assert len(traced.outcomes) == len(plain.outcomes)
        for with_trace, without in zip(traced.outcomes, plain.outcomes):
            assert with_trace.query.query_id == without.query.query_id
            assert with_trace.information_value == without.information_value
            assert with_trace.computational_latency == (
                without.computational_latency
            )
            assert with_trace.synchronization_latency == (
                without.synchronization_latency
            )
            assert with_trace.submitted_at == without.submitted_at
            assert with_trace.completed_at == without.completed_at

    def test_trace_flag_does_not_mutate_caller_config(self):
        setup, config = fig5_scale_config()
        before = dataclasses.replace(config)
        run_stream(
            config,
            approach="ivqp",
            queries=setup.queries()[:3],
            mean_interarrival=10.0,
            trace=True,
        )
        assert config.trace == before.trace is False
