"""Deterministic fault timelines for the simulation kernel.

The kernel rule applies here too: *this module knows nothing about
databases*.  It provides the generic machinery higher layers build fault
models from — half-open ``[start, end)`` windows, a queryable
:class:`OutageTimeline` of disjoint down-windows, and a seeded generator
that turns an outage rate into a reproducible alternating up/down
timeline.  ``repro.federation.faults`` attaches the domain meaning (site
outages, sync failures, link degradation).

Everything is pre-scheduled and pure: given the same seed and parameters
the same windows come back, which is what makes fault-injection runs
replayable and lets planners inspect the timeline ahead of time.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.sim.rng import RandomSource

__all__ = ["Window", "OutageTimeline", "generate_outage_windows"]


@dataclass(frozen=True)
class Window:
    """One half-open time interval ``[start, end)``."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigError(f"window start must be >= 0, got {self.start}")
        if self.end <= self.start:
            raise ConfigError(
                f"window must have positive length, got [{self.start}, {self.end})"
            )

    @property
    def duration(self) -> float:
        """Length of the window in minutes."""
        return self.end - self.start

    def contains(self, time: float) -> bool:
        """Whether ``time`` falls inside the half-open window."""
        return self.start <= time < self.end


class OutageTimeline:
    """A sorted sequence of disjoint down-windows with point queries.

    Answers the three questions fault-aware components ask: is the entity
    down at ``t``, when does it come back up, and when does the next
    outage begin.  Beyond the last window the entity is up forever.
    """

    def __init__(self, windows: list[Window] | None = None) -> None:
        ordered = sorted(windows or [], key=lambda w: w.start)
        for earlier, later in zip(ordered, ordered[1:]):
            if later.start < earlier.end:
                raise ConfigError(
                    f"outage windows overlap: [{earlier.start}, {earlier.end}) "
                    f"and [{later.start}, {later.end})"
                )
        self.windows: tuple[Window, ...] = tuple(ordered)
        self._starts = [window.start for window in self.windows]

    def __bool__(self) -> bool:
        return bool(self.windows)

    def __len__(self) -> int:
        return len(self.windows)

    def is_down(self, time: float) -> bool:
        """Whether the entity is inside a down-window at ``time``."""
        index = bisect.bisect_right(self._starts, time) - 1
        return index >= 0 and self.windows[index].contains(time)

    def up_at(self, time: float) -> float:
        """Earliest instant ≥ ``time`` at which the entity is up."""
        index = bisect.bisect_right(self._starts, time) - 1
        if index >= 0 and self.windows[index].contains(time):
            return self.windows[index].end
        return time

    def next_down_after(self, time: float) -> float:
        """Start of the first down-window at or after ``time``.

        Returns ``time`` itself when already down, ``inf`` when no further
        outage is scheduled.
        """
        index = bisect.bisect_right(self._starts, time) - 1
        if index >= 0 and self.windows[index].contains(time):
            return time
        if index + 1 < len(self.windows):
            return self.windows[index + 1].start
        return float("inf")

    def downtime_before(self, horizon: float) -> float:
        """Total down-minutes in ``[0, horizon)``."""
        total = 0.0
        for window in self.windows:
            if window.start >= horizon:
                break
            total += min(window.end, horizon) - window.start
        return total

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"OutageTimeline({len(self.windows)} windows)"


def generate_outage_windows(
    source: RandomSource,
    horizon: float,
    rate: float,
    mean_duration: float,
    min_duration: float = 1e-3,
) -> OutageTimeline:
    """Draw a reproducible alternating up/down timeline through ``horizon``.

    Outages arrive as a Poisson process with ``rate`` events per minute of
    *uptime*; each lasts an exponential ``mean_duration``.  A zero rate
    yields an empty timeline.  The same ``source`` (same seed and name)
    always produces the same windows.
    """
    if rate < 0:
        raise ConfigError(f"outage rate must be >= 0, got {rate}")
    if mean_duration <= 0:
        raise ConfigError(f"mean_duration must be > 0, got {mean_duration}")
    if horizon <= 0:
        raise ConfigError(f"horizon must be > 0, got {horizon}")
    if rate == 0.0:
        return OutageTimeline()
    windows: list[Window] = []
    clock = 0.0
    while True:
        clock += source.expovariate(rate)
        if clock >= horizon:
            break
        duration = max(source.expovariate(1.0 / mean_duration), min_duration)
        windows.append(Window(clock, clock + duration))
        clock += duration
    return OutageTimeline(windows)
