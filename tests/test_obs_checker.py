"""Unit tests: the trace invariant checker catches exactly what it should."""

from __future__ import annotations

import pytest

from types import SimpleNamespace

from repro.baselines import ivqp_router
from repro.core.value import DiscountRates
from repro.errors import SimulationError
from repro.federation.system import SystemConfig, TableSpec, build_system
from repro.obs import TraceChecker, events
from repro.obs.checker import PREFIX_SENSITIVE_RULES
from repro.obs.ledger import IVLedgerEntry
from repro.sim.trace import TraceRecord, Tracer
from repro.workload.query import DSSQuery


def traced_system(num_queries: int = 2):
    config = SystemConfig(
        tables=[
            TableSpec("a", site=0, row_count=1_000),
            TableSpec("b", site=1, row_count=2_000),
        ],
        replicated=["a"],
        sync_mode="periodic",
        sync_mean_interval=4.0,
        rates=DiscountRates(0.02, 0.02),
        trace=True,
        seed=2,
    )
    system = build_system(config, ivqp_router)
    for qid in range(num_queries):
        system.submit(
            DSSQuery(query_id=qid, name=f"q{qid}", tables=("a", "b")),
            at=3.0 * qid,
        )
    system.run()
    return system


def rules_of(violations) -> set[str]:
    return {violation.rule for violation in violations}


class TestCleanTraces:
    def test_real_run_is_clean(self):
        system = traced_system()
        checker = TraceChecker()
        assert checker.check(system.tracer.records) == []
        checker.assert_clean(system.tracer.records)  # must not raise

    def test_check_system_entry_point(self):
        system = traced_system()
        assert TraceChecker().check_system(system) == []

    def test_check_system_requires_a_tracer(self):
        config = SystemConfig(
            tables=[TableSpec("a", site=0, row_count=100)], replicated=[]
        )
        system = build_system(config, ivqp_router)
        with pytest.raises(SimulationError):
            TraceChecker().check_system(system)

    def test_empty_trace_is_clean(self):
        assert TraceChecker().check([]) == []


class TestTamperedTraces:
    """Each corruption must be caught by the rule named for it."""

    def test_tampered_iv_caught(self):
        records = traced_system().tracer.records
        for record in records:
            if record.kind == events.LEDGER:
                record.detail["reported_iv"] = record.detail["reported_iv"] + 0.1
        violations = TraceChecker().check(records)
        assert "iv-recompute" in rules_of(violations)
        assert "event-ledger-agree" in rules_of(violations)

    def test_tampered_timestamp_breaks_conservation(self):
        records = traced_system().tracer.records
        for record in records:
            if record.kind == events.LEDGER:
                record.detail["local_done_at"] = (
                    record.detail["local_done_at"] + 0.5
                )
        violations = TraceChecker().check(records)
        # Shifting one boundary changes two phases in opposite directions —
        # conservation survives — but the IV and the phase ordering cannot
        # all stay consistent with the event stream.
        assert rules_of(violations) & {
            "cl-conservation", "phase-order", "iv-recompute", "queue-wait"
        }

    def test_tampered_queue_wait_caught(self):
        records = traced_system().tracer.records
        for record in records:
            if record.kind == events.LEDGER:
                record.detail["queue_wait"] = record.detail["queue_wait"] + 1.0
        assert "queue-wait" in rules_of(TraceChecker().check(records))

    def test_tampered_provenance_caught(self):
        records = traced_system().tracer.records
        for record in records:
            if record.kind == events.LEDGER and record.detail["versions"]:
                record.detail["versions"][0]["realized_freshness"] = -999.0
        assert "sl-provenance" in rules_of(TraceChecker().check(records))

    def test_time_going_backwards_caught(self):
        records = traced_system().tracer.records
        shuffled = [records[-1]] + records[:-1]
        assert "time-monotonic" in rules_of(TraceChecker().check(shuffled))

    def test_causal_disorder_caught(self):
        records = traced_system().tracer.records
        complete = next(r for r in records if r.kind == events.COMPLETE)
        submit_index = next(
            index for index, r in enumerate(records)
            if r.kind == events.SUBMIT
            and r.detail.get("qid") == complete.detail["qid"]
        )
        tampered = [
            TraceRecord(
                records[submit_index].time, complete.kind,
                complete.subject, dict(complete.detail),
            )
            if index == submit_index else record
            for index, record in enumerate(records)
        ]
        assert "causal-order" in rules_of(TraceChecker().check(tampered))

    def test_duplicate_ledger_caught(self):
        records = traced_system().tracer.records
        ledger = next(r for r in records if r.kind == events.LEDGER)
        assert "ledger-unique" in rules_of(TraceChecker().check(records + [ledger]))

    def test_malformed_ledger_caught(self):
        record = TraceRecord(1.0, events.LEDGER, "q", {"query": "q"})
        assert "ledger-well-formed" in rules_of(TraceChecker().check([record]))

    def test_missing_qid_caught(self):
        record = TraceRecord(1.0, events.SUBMIT, "q", {})
        assert "qid-present" in rules_of(TraceChecker().check([record]))

    def test_assert_clean_raises_with_listing(self):
        record = TraceRecord(1.0, events.SUBMIT, "q", {})
        with pytest.raises(SimulationError, match="qid-present"):
            TraceChecker().assert_clean([record])


class TestCompletenessAndFaults:
    def test_submitted_but_never_finished_caught(self):
        records = [
            record for record in traced_system().tracer.records
            if record.kind not in (events.COMPLETE, events.FAILED, events.LEDGER)
        ]
        rules = rules_of(TraceChecker().check(records))
        assert "query-completes" in rules
        assert "ledger-present" in rules

    def test_truncated_window_tolerated_when_opted_out(self):
        records = [
            record for record in traced_system().tracer.records
            if record.kind not in (events.COMPLETE, events.FAILED, events.LEDGER)
        ]
        checker = TraceChecker(require_complete=False)
        assert checker.check(records) == []

    def test_fault_alternation_enforced(self):
        down = TraceRecord(1.0, events.FAULT_DOWN, "site:1", {})
        up = TraceRecord(2.0, events.FAULT_UP, "site:1", {})
        assert TraceChecker().check([down, up]) == []
        again = TraceRecord(3.0, events.FAULT_DOWN, "site:1", {})
        assert "fault-alternation" in rules_of(
            TraceChecker().check([down, down, up, again])
        )

    def test_tolerance_validation(self):
        with pytest.raises(SimulationError):
            TraceChecker(tolerance=-1.0)


class TestDropsDowngrade:
    """Capacity-bounded traces: prefix-sensitive rules are downgraded.

    Drop-oldest eviction removes the *front* of the trace, so rules that
    reason about earlier events (a ``leg.granted`` whose ``leg.start``
    fell off, an ``alert.close`` whose open is gone) fire spuriously on
    the retained suffix.  With the tracer's drop counter passed through,
    those rules are suppressed; everything suffix-anchored still gates.
    """

    def test_truncated_prefix_fires_leg_order_without_drop_count(self):
        # Regression: before drop-awareness, auditing a bounded tracer's
        # retained window reported leg-order on a perfectly healthy run.
        records = traced_system().tracer.records
        granted = next(
            index for index, record in enumerate(records)
            if record.kind == events.LEG_GRANTED
        )
        truncated = records[granted:]
        assert "leg-order" in rules_of(TraceChecker().check(truncated))

    def test_drop_count_downgrades_prefix_sensitive_rules(self):
        records = traced_system().tracer.records
        granted = next(
            index for index, record in enumerate(records)
            if record.kind == events.LEG_GRANTED
        )
        truncated = records[granted:]
        checker = TraceChecker()
        assert checker.check(truncated, dropped=granted) == []
        checker.assert_clean(truncated, dropped=granted)  # must not raise

    def test_check_system_passes_the_tracer_drop_counter(self):
        # Re-emit a clean run through a capacity-bounded tracer: the
        # retained window loses the first legs, but check_system reads
        # tracer.dropped and stays clean.
        records = traced_system().tracer.records
        granted = next(
            index for index, record in enumerate(records)
            if record.kind == events.LEG_GRANTED
        )
        clock = [0.0]
        bounded = Tracer(lambda: clock[0], capacity=len(records) - granted)
        for record in records:
            clock[0] = record.time
            bounded.emit(record.kind, record.subject, **record.detail)
        assert bounded.dropped == granted
        system = SimpleNamespace(tracer=bounded)
        assert TraceChecker().check_system(system) == []
        # Without the drop counter the same window is (spuriously) dirty.
        assert "leg-order" in rules_of(TraceChecker().check(bounded.records))

    def test_drops_do_not_excuse_suffix_anchored_rules(self):
        # Tampering the retained window must still be caught: the ledger
        # identity rules are not prefix-sensitive.
        records = traced_system().tracer.records
        for record in records:
            if record.kind == events.LEDGER:
                record.detail["reported_iv"] = record.detail["reported_iv"] + 0.1
        rules = rules_of(TraceChecker().check(records, dropped=5))
        assert "iv-recompute" in rules
        assert not rules & PREFIX_SENSITIVE_RULES


def alert_record(time, kind, subject="slo:r", **overrides):
    detail = {
        "rule": "r", "metric": "m", "value": 1.0,
        "threshold": 0.5, "clear": 0.4,
    }
    detail.update(overrides)
    return TraceRecord(time, kind, subject, detail)


class TestAlertRules:
    """alert-alternation / alert-well-formed / alert-window invariants."""

    # A non-alert record pinning the trace span start.
    base = TraceRecord(0.0, events.MQO_WINDOW, "window:0", {"index": 0})

    def test_open_close_pair_is_clean(self):
        records = [
            self.base,
            alert_record(1.0, events.ALERT_OPEN, since=0.5),
            alert_record(2.0, events.ALERT_CLOSE, opened_at=1.0),
        ]
        assert TraceChecker().check(records) == []

    def test_double_open_caught(self):
        records = [
            self.base,
            alert_record(1.0, events.ALERT_OPEN, since=0.5),
            alert_record(2.0, events.ALERT_OPEN, since=0.5),
        ]
        assert "alert-alternation" in rules_of(TraceChecker().check(records))

    def test_close_without_open_caught_then_excused_by_drops(self):
        records = [
            self.base,
            alert_record(2.0, events.ALERT_CLOSE, opened_at=1.0),
        ]
        assert "alert-alternation" in rules_of(TraceChecker().check(records))
        # The open may simply have been evicted from a bounded tracer.
        assert TraceChecker().check(records, dropped=1) == []

    def test_open_since_outside_trace_span_caught(self):
        records = [
            self.base,
            alert_record(1.0, events.ALERT_OPEN, since=-5.0),
            alert_record(2.0, events.ALERT_CLOSE, opened_at=1.0),
        ]
        assert "alert-window" in rules_of(TraceChecker().check(records))

    def test_close_opened_at_mismatch_caught(self):
        records = [
            self.base,
            alert_record(1.0, events.ALERT_OPEN, since=0.5),
            alert_record(2.0, events.ALERT_CLOSE, opened_at=0.25),
        ]
        assert "alert-window" in rules_of(TraceChecker().check(records))

    def test_open_still_dangling_at_end_of_trace_caught(self):
        # Regression: a run that stopped mid-breach used to pass the
        # audit with its last alert.open unmatched.  The close must exist
        # (SLOMonitor.finalize emits it at shutdown).
        records = [
            self.base,
            alert_record(1.0, events.ALERT_OPEN, since=0.5),
        ]
        violations = TraceChecker().check(records)
        assert "alert-alternation" in rules_of(violations)
        assert any("still open" in v.message for v in violations)
        # With the close appended (what finalize produces) the pair is clean.
        records.append(
            alert_record(2.0, events.ALERT_CLOSE, opened_at=1.0, final=True)
        )
        assert TraceChecker().check(records) == []
        # A bounded tracer that evicted records downgrades the rule, like
        # every other prefix-sensitive alternation failure.
        assert TraceChecker().check(records[:2], dropped=1) == []

    def test_alert_missing_detail_keys_caught(self):
        record = TraceRecord(1.0, events.ALERT_OPEN, "slo:r", {"rule": "r"})
        assert "alert-well-formed" in rules_of(
            TraceChecker().check([self.base, record])
        )


class TestSLOCoverage:
    """check_slo replays the rules and audits the emitted alerts."""

    @pytest.fixture(scope="class")
    def live_run(self):
        from repro.experiments.live import run_live

        return run_live()

    def test_live_run_alerts_and_passes_both_audits(self, live_run):
        checker = TraceChecker()
        assert checker.check_system(live_run.system) == []
        records = live_run.system.tracer.records
        assert any(r.kind == events.ALERT_OPEN for r in records)
        assert checker.check_slo(
            records, live_run.monitor.rules,
            window=live_run.registry.window,
            half_life=live_run.registry.half_life,
        ) == []

    def test_suppressed_alert_caught_as_coverage_gap(self, live_run):
        records = live_run.system.tracer.records
        first_open = next(
            r for r in records if r.kind == events.ALERT_OPEN
        )
        tampered = [r for r in records if r is not first_open]
        violations = TraceChecker().check_slo(
            tampered, live_run.monitor.rules,
            window=live_run.registry.window,
            half_life=live_run.registry.half_life,
        )
        assert "slo-coverage" in rules_of(violations)

    def test_fabricated_alert_caught_as_coverage_gap(self, live_run):
        records = list(live_run.system.tracer.records)
        rule_name = live_run.monitor.rules[0].name
        records.append(alert_record(
            records[-1].time + 1.0, events.ALERT_OPEN,
            subject=f"slo:{rule_name}", rule=rule_name, since=records[-1].time,
        ))
        violations = TraceChecker().check_slo(
            records, live_run.monitor.rules,
            window=live_run.registry.window,
            half_life=live_run.registry.half_life,
        )
        assert "slo-coverage" in rules_of(violations)


class TestLedgerEntryAgainstOutcomes:
    def test_ledger_mirrors_outcomes_exactly(self):
        system = traced_system(num_queries=3)
        assert len(system.ledger) == len(system.outcomes)
        by_qid = {entry.query_id: entry for entry in system.ledger}
        for outcome in system.outcomes:
            entry = by_qid[outcome.query.query_id]
            assert isinstance(entry, IVLedgerEntry)
            assert entry.reported_iv == outcome.information_value
            assert entry.recompute_iv() == outcome.information_value
            assert entry.computational_latency == outcome.computational_latency
            assert (
                entry.synchronization_latency == outcome.synchronization_latency
            )
