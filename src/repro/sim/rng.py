"""Deterministic random-number infrastructure for the simulation kernel.

The paper's experiments use JavaSim's stream classes, each drawing from an
independent pseudo-random sequence.  :class:`RandomSource` reproduces that
discipline: a single root seed fans out into *named* substreams, so adding a
new stream to a model never perturbs the draws seen by existing streams.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RandomSource"]


class RandomSource:
    """A seeded factory of independent pseudo-random substreams.

    Parameters
    ----------
    seed:
        Root seed.  Two sources built from the same seed produce identical
        substreams for identical names.
    name:
        Label of this source, included when deriving child seeds.
    """

    def __init__(self, seed: int = 0, name: str = "root") -> None:
        self.seed = int(seed)
        self.name = name
        self._random = random.Random(self._derive(name))
        self._spawned: dict[str, "RandomSource"] = {}

    def _derive(self, name: str) -> int:
        digest = hashlib.sha256(f"{self.seed}/{name}".encode()).digest()
        return int.from_bytes(digest[:8], "big")

    @property
    def random(self) -> random.Random:
        """The underlying :class:`random.Random` generator."""
        return self._random

    def spawn(self, name: str) -> "RandomSource":
        """Return the substream named ``name`` (created on first use).

        Substreams are cached, so repeated calls with the same name return
        the *same* object and therefore continue the same sequence.
        """
        child = self._spawned.get(name)
        if child is None:
            child = RandomSource(self._derive(name), f"{self.name}/{name}")
            self._spawned[name] = child
        return child

    # Convenience draws, mirroring the subset of ``random.Random`` the
    # simulation streams need.

    def uniform(self, low: float, high: float) -> float:
        """Draw a uniform float in ``[low, high]``."""
        return self._random.uniform(low, high)

    def expovariate(self, rate: float) -> float:
        """Draw an exponential variate with the given ``rate`` (1/mean)."""
        return self._random.expovariate(rate)

    def gauss(self, mu: float, sigma: float) -> float:
        """Draw a normal variate."""
        return self._random.gauss(mu, sigma)

    def randint(self, low: int, high: int) -> int:
        """Draw an integer uniformly from ``[low, high]`` inclusive."""
        return self._random.randint(low, high)

    def choice(self, seq):
        """Pick one element of ``seq`` uniformly."""
        return self._random.choice(seq)

    def sample(self, seq, k: int):
        """Pick ``k`` distinct elements of ``seq`` uniformly."""
        return self._random.sample(seq, k)

    def shuffle(self, seq) -> None:
        """Shuffle ``seq`` in place."""
        self._random.shuffle(seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RandomSource(seed={self.seed}, name={self.name!r})"
