"""Greedy join-order planner and executor for the mini engine.

The planner produces a left-deep join tree (smallest estimated input first),
an *estimated cost* in abstract work units, and can execute the plan against
a :class:`Database`.  Estimated cost is what the federation layer converts
into simulated processing minutes; executed :class:`ExecutionStats` are used
by tests to check the estimates are sane.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.engine.expr import Col, Compare
from repro.engine.ops import (
    Aggregate,
    ExecutionStats,
    Filter,
    HashJoin,
    Limit,
    Operator,
    Project,
    Scan,
    Sort,
)
from repro.engine.query import LogicalQuery
from repro.engine.stats import (
    TableStats,
    estimate_selectivity,
    join_selectivity,
)
from repro.engine.table import Table
from repro.errors import EngineError

__all__ = ["Database", "CostEstimate", "PhysicalPlan", "Planner"]


class Database:
    """A named collection of tables with cached statistics."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._stats: dict[str, TableStats] = {}

    def add(self, table: Table) -> None:
        """Register a table under its schema name."""
        name = table.schema.name
        if name in self._tables:
            raise EngineError(f"table {name!r} already registered")
        self._tables[name] = table
        self._stats[name] = TableStats.from_table(table)

    def table(self, name: str) -> Table:
        """Fetch a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise EngineError(f"database has no table {name!r}")

    def stats(self, name: str) -> TableStats:
        """Fetch (cached) statistics for a table."""
        try:
            return self._stats[name]
        except KeyError:
            raise EngineError(f"database has no table {name!r}")

    def refresh_stats(self, name: str) -> None:
        """Recompute statistics after bulk-loading more rows."""
        self._stats[name] = TableStats.from_table(self.table(name))

    @property
    def table_names(self) -> list[str]:
        """All registered table names."""
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables


@dataclass(frozen=True)
class CostEstimate:
    """Planner cost estimate for a query."""

    rows_scanned: float
    intermediate_rows: float
    output_rows: float

    @property
    def work_units(self) -> float:
        """Scalar work figure comparable to ``ExecutionStats.total_work``."""
        return self.rows_scanned + 2.0 * self.intermediate_rows + self.output_rows


@dataclass
class PhysicalPlan:
    """An executable operator tree plus its cost estimate."""

    query: LogicalQuery
    root: Operator
    estimate: CostEstimate
    stats: ExecutionStats
    join_order: tuple[str, ...]

    def execute(self) -> list[dict]:
        """Materialise the full result."""
        return list(self.root)


class Planner:
    """Builds physical plans with a greedy smallest-first join order."""

    def __init__(self, database: Database) -> None:
        self.database = database

    # -- public API ----------------------------------------------------------

    def plan(self, query: LogicalQuery) -> PhysicalPlan:
        """Choose a join order and build the operator tree."""
        stats_by_alias = self._stats_by_alias(query)
        base_cards = self._filtered_cardinalities(query, stats_by_alias)
        join_order = self._greedy_join_order(query, base_cards, stats_by_alias)
        exec_stats = ExecutionStats()
        root, estimate = self._build_tree(
            query, join_order, base_cards, stats_by_alias, exec_stats
        )
        return PhysicalPlan(
            query=query,
            root=root,
            estimate=estimate,
            stats=exec_stats,
            join_order=tuple(join_order),
        )

    def estimate(self, query: LogicalQuery) -> CostEstimate:
        """Cost estimate without building an executable tree."""
        return self.plan(query).estimate

    # -- estimation helpers ----------------------------------------------------

    def _stats_by_alias(self, query: LogicalQuery) -> dict[str, TableStats]:
        return {
            alias: self.database.stats(table_name)
            for alias, table_name in query.tables
        }

    def _filtered_cardinalities(
        self,
        query: LogicalQuery,
        stats_by_alias: dict[str, TableStats],
    ) -> dict[str, float]:
        cards: dict[str, float] = {}
        for alias, _table_name in query.tables:
            base = float(stats_by_alias[alias].row_count)
            for predicate in query.filters_for_alias(alias):
                base *= estimate_selectivity(predicate, stats_by_alias)
            cards[alias] = max(base, 0.0)
        return cards

    def _join_terms_between(
        self,
        query: LogicalQuery,
        joined: set[str],
        candidate: str,
    ) -> list[Compare]:
        terms = []
        for term in query.join_terms():
            left = term.left
            right = term.right
            assert isinstance(left, Col) and isinstance(right, Col)
            tables = {left.table, right.table}
            if candidate in tables and tables - {candidate} <= joined and len(tables) == 2:
                terms.append(term)
        return terms

    def _greedy_join_order(
        self,
        query: LogicalQuery,
        base_cards: dict[str, float],
        stats_by_alias: dict[str, TableStats],
    ) -> list[str]:
        remaining = list(query.aliases)
        if len(remaining) == 1:
            return remaining
        # Seed with the smallest filtered table.
        order = [min(remaining, key=lambda alias: base_cards[alias])]
        remaining.remove(order[0])
        current_card = base_cards[order[0]]
        while remaining:
            best_alias = None
            best_card = math.inf
            connected_found = False
            for alias in remaining:
                terms = self._join_terms_between(query, set(order), alias)
                if terms:
                    connected_found = True
                    selectivity = 1.0
                    for term in terms:
                        left, right = term.left, term.right
                        assert isinstance(left, Col) and isinstance(right, Col)
                        selectivity *= join_selectivity(
                            left.table, left.column,
                            right.table, right.column,
                            stats_by_alias,
                        )
                    card = current_card * base_cards[alias] * selectivity
                elif not connected_found:
                    # Cross join fallback, only considered while nothing
                    # connected is available.
                    card = current_card * base_cards[alias]
                else:
                    continue
                if card < best_card:
                    best_card = card
                    best_alias = alias
            if best_alias is None:  # pragma: no cover - defensive
                best_alias = remaining[0]
                best_card = current_card * base_cards[best_alias]
            order.append(best_alias)
            remaining.remove(best_alias)
            current_card = max(best_card, 1.0)
        return order

    # -- tree construction --------------------------------------------------

    def _scan_with_filters(
        self,
        query: LogicalQuery,
        alias: str,
        exec_stats: ExecutionStats,
    ) -> Operator:
        table = self.database.table(query.table_for_alias(alias))
        node: Operator = Scan(table, alias, exec_stats)
        for predicate in query.filters_for_alias(alias):
            node = Filter(node, predicate)
        return node

    def _build_tree(
        self,
        query: LogicalQuery,
        join_order: list[str],
        base_cards: dict[str, float],
        stats_by_alias: dict[str, TableStats],
        exec_stats: ExecutionStats,
    ) -> tuple[Operator, CostEstimate]:
        rows_scanned = sum(
            float(stats_by_alias[alias].row_count) for alias in join_order
        )
        node = self._scan_with_filters(query, join_order[0], exec_stats)
        joined = {join_order[0]}
        current_card = base_cards[join_order[0]]
        intermediate = 0.0
        for alias in join_order[1:]:
            right = self._scan_with_filters(query, alias, exec_stats)
            terms = self._join_terms_between(query, joined, alias)
            if terms:
                left_keys, right_keys = [], []
                selectivity = 1.0
                for term in terms:
                    first, second = term.left, term.right
                    assert isinstance(first, Col) and isinstance(second, Col)
                    if first.table == alias:
                        first, second = second, first
                    left_keys.append(first.qualified)
                    right_keys.append(second.qualified)
                    selectivity *= join_selectivity(
                        first.table, first.column,
                        second.table, second.column,
                        stats_by_alias,
                    )
                node = HashJoin(node, right, left_keys, right_keys)
                current_card = current_card * base_cards[alias] * selectivity
            else:
                # Cross join expressed as a join on a constant-true key.
                node = _CrossJoin(node, right)
                current_card = current_card * base_cards[alias]
            current_card = max(current_card, 1.0)
            intermediate += current_card
            joined.add(alias)

        # Residual predicates touching several tables but not equi-joins.
        residual = [
            pred
            for pred in query.filter_terms()
            if len({q.split(".", 1)[0] for q in pred.columns()}) > 1
        ]
        for predicate in residual:
            node = Filter(node, predicate)
            current_card *= estimate_selectivity(predicate, stats_by_alias)

        output_rows = current_card
        if query.aggregates:
            node = Aggregate(node, query.group_by, query.aggregates)
            if query.group_by:
                distinct = 1.0
                for qualified in query.group_by:
                    alias, column = qualified.split(".", 1)
                    col_stats = stats_by_alias.get(alias)
                    per_col = (
                        col_stats.column(column).distinct
                        if col_stats and col_stats.column(column)
                        else 10
                    )
                    distinct *= max(per_col, 1)
                output_rows = min(current_card, distinct)
            else:
                output_rows = 1.0
        elif query.projections:
            node = Project(node, query.projections)

        if query.order_by:
            node = Sort(node, query.order_by, descending=query.descending)
        if query.limit is not None:
            node = Limit(node, query.limit)
            output_rows = min(output_rows, float(query.limit))

        estimate = CostEstimate(
            rows_scanned=rows_scanned,
            intermediate_rows=intermediate,
            output_rows=max(output_rows, 1.0),
        )
        return node, estimate


class _CrossJoin(Operator):
    """Nested-loop cross product (rare fallback for disconnected queries)."""

    def __init__(self, left: Operator, right: Operator) -> None:
        super().__init__(left.stats)
        self.left = left
        self.right = right

    @property
    def columns(self) -> tuple[str, ...]:
        return self.left.columns + self.right.columns

    def __iter__(self):
        right_rows = list(self.right)
        self.stats.hash_build_rows += len(right_rows)
        for left_row in self.left:
            for right_row in right_rows:
                self.stats.rows_joined += 1
                merged = dict(left_row)
                merged.update(right_row)
                yield merged
