"""Fault injection, fault-tolerant execution and degraded-mode planning.

Covers the failure-semantics subsystem end to end: the kernel-level
outage timelines (``repro.sim.faults``), the seeded fault plans and the
runtime injector (``repro.federation.faults``), the executor's
retry/failover machinery, the replication manager's skip/delay handling,
availability-aware plan enumeration, and a reduced run of the EXT3
graceful-degradation sweep.
"""

from __future__ import annotations

import pytest

from repro.core.enumeration import (
    gather_combos,
    make_plan,
    sync_points_between,
)
from repro.core.optimizer import IVQPOptimizer
from repro.core.value import DiscountRates
from repro.errors import ConfigError
from repro.federation.catalog import Catalog, FixedSyncSchedule, TableDef
from repro.federation.costmodel import StaticCostProvider
from repro.federation.executor import ExecutionPolicy, PlanExecutor
from repro.federation.faults import (
    SYNC_DELAY,
    SYNC_OK,
    SYNC_SKIP,
    FaultInjector,
    FaultPlan,
    LinkDegradation,
)
from repro.federation.site import LOCAL_SITE_ID, Site
from repro.federation.sync import ReplicationManager
from repro.sim.faults import OutageTimeline, Window, generate_outage_windows
from repro.sim.rng import RandomSource
from repro.sim.scheduler import Simulator
from repro.workload.query import DSSQuery

RATES = DiscountRates(0.01, 0.01)


class TestWindow:
    def test_half_open_containment(self):
        window = Window(2.0, 5.0)
        assert window.contains(2.0)
        assert window.contains(4.999)
        assert not window.contains(5.0)
        assert not window.contains(1.999)
        assert window.duration == pytest.approx(3.0)

    def test_degenerate_windows_rejected(self):
        with pytest.raises(ConfigError):
            Window(3.0, 3.0)
        with pytest.raises(ConfigError):
            Window(5.0, 4.0)
        with pytest.raises(ConfigError):
            Window(-1.0, 4.0)


class TestOutageTimeline:
    def make(self):
        return OutageTimeline([Window(2.0, 4.0), Window(10.0, 11.0)])

    def test_point_queries(self):
        timeline = self.make()
        assert not timeline.is_down(1.0)
        assert timeline.is_down(2.0)
        assert timeline.is_down(3.5)
        assert not timeline.is_down(4.0)  # half-open end
        assert timeline.is_down(10.5)
        assert not timeline.is_down(11.0)

    def test_up_at_and_next_down(self):
        timeline = self.make()
        assert timeline.up_at(1.0) == 1.0
        assert timeline.up_at(3.0) == 4.0
        assert timeline.up_at(10.0) == 11.0
        assert timeline.next_down_after(0.0) == 2.0
        assert timeline.next_down_after(3.0) == 3.0  # already down
        assert timeline.next_down_after(4.0) == 10.0
        assert timeline.next_down_after(11.0) == float("inf")

    def test_downtime_before(self):
        timeline = self.make()
        assert timeline.downtime_before(3.0) == pytest.approx(1.0)
        assert timeline.downtime_before(100.0) == pytest.approx(3.0)

    def test_overlapping_windows_rejected(self):
        with pytest.raises(ConfigError):
            OutageTimeline([Window(0.0, 5.0), Window(4.0, 6.0)])

    def test_generator_is_deterministic(self):
        first = generate_outage_windows(
            RandomSource(7, "outage/0"), 500.0, 0.05, 8.0
        )
        second = generate_outage_windows(
            RandomSource(7, "outage/0"), 500.0, 0.05, 8.0
        )
        assert first.windows == second.windows
        assert first  # the rate is high enough to draw something

    def test_zero_rate_means_no_outages(self):
        timeline = generate_outage_windows(
            RandomSource(1, "x"), 1_000.0, 0.0, 10.0
        )
        assert not timeline
        assert timeline.next_down_after(0.0) == float("inf")


class TestFaultPlan:
    def test_generate_identical_seeds_identical_timelines(self):
        kwargs = dict(
            horizon=800.0, site_ids=[0, 1, 2], outage_rate=0.01,
            outage_mean_duration=6.0, sync_skip_prob=0.1,
            sync_delay_prob=0.2, sync_delay_mean=3.0,
        )
        first = FaultPlan.generate(seed=11, **kwargs)
        second = FaultPlan.generate(seed=11, **kwargs)
        other = FaultPlan.generate(seed=12, **kwargs)
        for site in (0, 1, 2):
            assert (
                first.site_outages.get(site, OutageTimeline()).windows
                == second.site_outages.get(site, OutageTimeline()).windows
            )
        assert any(
            first.site_outages.get(site, OutageTimeline()).windows
            != other.site_outages.get(site, OutageTimeline()).windows
            for site in (0, 1, 2)
        )

    def test_adding_a_site_never_perturbs_existing_sites(self):
        small = FaultPlan.generate(
            seed=5, horizon=800.0, site_ids=[0, 1], outage_rate=0.02
        )
        large = FaultPlan.generate(
            seed=5, horizon=800.0, site_ids=[0, 1, 2, 3], outage_rate=0.02
        )
        for site in (0, 1):
            assert (
                small.site_outages.get(site, OutageTimeline()).windows
                == large.site_outages.get(site, OutageTimeline()).windows
            )

    def test_sync_disposition_is_order_independent(self):
        plan_a = FaultPlan(sync_skip_prob=0.3, sync_delay_prob=0.3, seed=9)
        plan_b = FaultPlan(sync_skip_prob=0.3, sync_delay_prob=0.3, seed=9)
        times = [1.0, 2.5, 7.0, 11.25]
        forward = [plan_a.sync_disposition("t", time) for time in times]
        backward = [
            plan_b.sync_disposition("t", time) for time in reversed(times)
        ]
        assert forward == list(reversed(backward))
        kinds = {kind for kind, _delay in forward}
        assert kinds <= {SYNC_OK, SYNC_SKIP, SYNC_DELAY}

    def test_sync_from_down_site_always_skips(self):
        plan = FaultPlan(
            site_outages={0: OutageTimeline([Window(4.0, 8.0)])},
            table_sites={"t": 0},
            seed=3,
        )
        assert plan.sync_disposition("t", 5.0) == (SYNC_SKIP, 0.0)
        assert plan.unreliable_sync("t", 5.0)
        assert plan.sync_disposition("t", 9.0) == (SYNC_OK, 0.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            FaultPlan(sync_skip_prob=0.7, sync_delay_prob=0.7)
        with pytest.raises(ConfigError):
            FaultPlan(sync_skip_prob=-0.1)
        with pytest.raises(ConfigError):
            FaultPlan(sync_delay_mean=0.0)
        with pytest.raises(ConfigError):
            LinkDegradation(Window(0.0, 1.0), latency_multiplier=0.5)


def fault_world(
    windows=(),
    policy=None,
    with_replica=False,
    local_capacity=2,
):
    """One remote table at site 0 with an optional outage timeline there."""
    sim = Simulator()
    catalog = Catalog()
    catalog.add_table(TableDef("t", site=0, row_count=100))
    if with_replica:
        catalog.add_replica("t", FixedSyncSchedule([1.0], tail_period=1_000.0))
    sites = {
        LOCAL_SITE_ID: Site(sim, LOCAL_SITE_ID, capacity=local_capacity),
        0: Site(sim, 0, capacity=1),
    }
    plan = FaultPlan(
        site_outages=(
            {0: OutageTimeline([Window(*spec) for spec in windows])}
            if windows
            else None
        ),
        table_sites={"t": 0},
    )
    injector = FaultInjector(sim, plan, sites=sites)
    provider = StaticCostProvider(
        catalog, by_remote_count={0: 1.0, 1: 4.0}, remote_leg_fraction=0.75
    )
    executor = PlanExecutor(
        sim, catalog, sites,
        policy=policy, faults=injector, cost_provider=provider,
    )
    return sim, catalog, provider, injector, executor


def remote_plan(catalog, provider, qid=1):
    query = DSSQuery(query_id=qid, name=f"q{qid}", tables=("t",))
    return make_plan(
        query, catalog, provider, RATES, 0.0, 0.0, frozenset({"t"})
    )


class TestExecutorFaultHandling:
    def test_fault_free_run_is_clean(self):
        sim, catalog, provider, injector, executor = fault_world()
        executor.execute(remote_plan(catalog, provider))
        sim.run(until=50.0)
        (outcome,) = executor.outcomes
        assert not outcome.degraded and not outcome.failed
        assert outcome.retries == 0 and outcome.failovers == 0
        assert outcome.completed_at == pytest.approx(4.0)  # 3.0 leg + 1.0 local
        assert outcome.information_value > 0.0

    def test_down_at_request_waits_out_outage_and_retries(self):
        policy = ExecutionPolicy(max_retries=3, retry_backoff=0.1)
        sim, catalog, provider, injector, executor = fault_world(
            windows=[(0.0, 2.0)], policy=policy
        )
        executor.execute(remote_plan(catalog, provider))
        sim.run(until=50.0)
        (outcome,) = executor.outcomes
        assert outcome.retries == 1
        assert outcome.degraded and not outcome.failed
        assert injector.stats.legs_stalled_on_outage == 1
        # Recovery at 2.0 + one backoff 0.1, leg 3.0, local 1.0.
        assert outcome.completed_at == pytest.approx(6.1)
        # Base data is as-of the retried leg's actual start.
        assert outcome.data_timestamp == pytest.approx(2.1)

    def test_mid_leg_outage_loses_the_work_and_retries(self):
        policy = ExecutionPolicy(max_retries=3, retry_backoff=0.1)
        sim, catalog, provider, injector, executor = fault_world(
            windows=[(1.0, 2.0)], policy=policy
        )
        executor.execute(remote_plan(catalog, provider))
        sim.run(until=50.0)
        (outcome,) = executor.outcomes
        assert injector.stats.legs_interrupted == 1
        assert outcome.retries == 1
        # Work from 0.0-1.0 is lost; rerun starts 2.1, leg 3.0, local 1.0.
        assert outcome.completed_at == pytest.approx(6.1)

    def test_exhausted_retries_fail_over_to_replica(self):
        policy = ExecutionPolicy(max_retries=0, failover=True)
        sim, catalog, provider, injector, executor = fault_world(
            windows=[(0.0, 900.0)], policy=policy, with_replica=True
        )
        executor.execute(remote_plan(catalog, provider))
        sim.run(until=50.0)
        (outcome,) = executor.outcomes
        assert outcome.failovers == 1
        assert outcome.degraded and not outcome.failed
        # The failover plan reads the replica: no remote legs remain.
        assert outcome.plan.remote_tables == frozenset()
        assert outcome.completed_at == pytest.approx(1.0)  # replica-only scan
        assert outcome.information_value > 0.0

    def test_no_replica_means_recorded_failure_not_a_lost_query(self):
        policy = ExecutionPolicy(max_retries=0, failover=True)
        sim, catalog, provider, injector, executor = fault_world(
            windows=[(0.0, 900.0)], policy=policy, with_replica=False
        )
        executor.execute(remote_plan(catalog, provider))
        sim.run(until=50.0)
        (outcome,) = executor.outcomes  # conservation: still one outcome
        assert outcome.failed and outcome.degraded
        assert outcome.information_value == 0.0
        assert "FAILED" in outcome.describe()

    def test_failover_disabled_fails_the_query(self):
        policy = ExecutionPolicy(max_retries=0, failover=False)
        sim, catalog, provider, injector, executor = fault_world(
            windows=[(0.0, 900.0)], policy=policy, with_replica=True
        )
        executor.execute(remote_plan(catalog, provider))
        sim.run(until=50.0)
        (outcome,) = executor.outcomes
        assert outcome.failed
        assert outcome.failovers == 0

    def test_leg_timeout_withdraws_from_stuck_queue_and_retries(self):
        # Query 1 occupies the capacity-1 remote site for 3 minutes; query
        # 2's leg times out of the queue at 1.0, backs off, and eventually
        # lands once the site frees up.
        policy = ExecutionPolicy(
            max_retries=3, retry_backoff=0.1, leg_timeout=1.0
        )
        sim, catalog, provider, injector, executor = fault_world(policy=policy)
        executor.execute(remote_plan(catalog, provider, qid=1))
        executor.execute(remote_plan(catalog, provider, qid=2))
        sim.run(until=50.0)
        assert len(executor.outcomes) == 2
        second = max(executor.outcomes, key=lambda o: o.completed_at)
        assert second.retries >= 1
        assert second.degraded and not second.failed
        assert second.information_value > 0.0

    def test_policy_validation(self):
        with pytest.raises(ConfigError):
            ExecutionPolicy(max_retries=-1)
        with pytest.raises(ConfigError):
            ExecutionPolicy(retry_backoff=-0.5)
        with pytest.raises(ConfigError):
            ExecutionPolicy(leg_timeout=0.0)

    def test_degradation_penalty_slows_the_leg(self):
        sim, catalog, provider, injector, executor = fault_world()
        injector.plan.degradations = {
            0: (
                LinkDegradation(
                    Window(0.0, 100.0),
                    latency_multiplier=1.0,
                    bandwidth_multiplier=2.0,
                ),
            )
        }
        executor.execute(remote_plan(catalog, provider))
        sim.run(until=50.0)
        (outcome,) = executor.outcomes
        # Leg doubles from 3.0 to 6.0 under the saturated link.
        assert outcome.completed_at == pytest.approx(7.0)
        assert injector.stats.legs_degraded == 1
        assert injector.stats.degraded_leg_minutes == pytest.approx(3.0)

    def test_injector_start_toggles_site_availability(self):
        sim, _catalog, _provider, injector, executor = fault_world(
            windows=[(1.0, 2.0)]
        )
        injector.start()
        site = executor.site(0)
        flips = []
        sim.call_at(0.5, lambda: flips.append((0.5, site.available)))
        sim.call_at(1.5, lambda: flips.append((1.5, site.available)))
        sim.call_at(2.5, lambda: flips.append((2.5, site.available)))
        sim.run(until=5.0)
        assert flips == [(0.5, True), (1.5, False), (2.5, True)]
        assert injector.stats.outages_scheduled == 1
        assert injector.stats.outage_minutes == pytest.approx(1.0)


class TestReplicationUnderFaults:
    def make(self, plan, times=(2.0, 4.0, 6.0)):
        sim = Simulator()
        catalog = Catalog()
        catalog.add_table(TableDef("a", site=0, row_count=10))
        catalog.add_replica(
            "a", FixedSyncSchedule(list(times), tail_period=1_000.0)
        )
        injector = FaultInjector(sim, plan)
        manager = ReplicationManager(sim, catalog, injector=injector)
        return sim, catalog, injector, manager

    def test_skipped_syncs_never_touch_the_replica(self):
        sim, catalog, injector, manager = self.make(
            FaultPlan(sync_skip_prob=1.0, seed=2)
        )
        manager.start()
        sim.run(until=10.0)
        assert manager.total_syncs == 0
        assert manager.syncs_skipped == 3
        assert injector.stats.syncs_skipped == 3
        replica = catalog.replica("a")
        # The schedule promises freshness 6.0 at t=10; reality delivered
        # nothing past the initial load.
        assert replica.freshness_at(10.0) == pytest.approx(6.0)
        assert replica.realized_freshness_at(10.0) == replica.initial_timestamp

    def test_delayed_syncs_land_late(self):
        sim, catalog, injector, manager = self.make(
            FaultPlan(sync_delay_prob=1.0, sync_delay_mean=2.0, seed=2)
        )
        manager.start()
        sim.run(until=200.0)
        assert manager.total_syncs == 3
        assert manager.syncs_delayed == 3
        assert injector.stats.sync_delay_minutes > 0.0
        replica = catalog.replica("a")
        # At every probe instant reality trails (or matches) the promise.
        for probe in (2.5, 4.5, 6.5, 9.0):
            assert (
                replica.realized_freshness_at(probe)
                <= replica.freshness_at(probe) + 1e-12
            )

    def test_fault_free_manager_matches_published_schedule(self):
        sim, catalog, injector, manager = self.make(FaultPlan())
        manager.start()
        sim.run(until=10.0)
        assert manager.total_syncs == 3
        assert manager.syncs_skipped == 0 and manager.syncs_delayed == 0
        replica = catalog.replica("a")
        assert replica.realized_freshness_at(10.0) == pytest.approx(
            replica.freshness_at(10.0)
        )


def planning_catalog():
    catalog = Catalog()
    catalog.add_table(TableDef("a", site=0, row_count=2_000))
    catalog.add_table(TableDef("b", site=1, row_count=2_000))
    catalog.add_replica(
        "a", FixedSyncSchedule([1.0, 5.0, 9.0], tail_period=4.0)
    )
    return catalog


class TestAvailabilityAwarePlanning:
    def test_gather_combos_keep_down_sites_on_replicas(self):
        catalog = planning_catalog()
        query = DSSQuery(query_id=1, name="q", tables=("a", "b"))
        availability = FaultPlan(
            site_outages={0: OutageTimeline([Window(0.0, 10.0)])}
        )
        during = gather_combos(query, catalog, 5.0, availability)
        after = gather_combos(query, catalog, 20.0, availability)
        # "b" has no replica and must always be read remotely; "a" must
        # stay on its replica while site 0 is down.
        assert during == [frozenset({"b"})]
        assert frozenset({"a", "b"}) in after

    def test_sync_points_skip_unreliable_completions(self):
        catalog = planning_catalog()
        query = DSSQuery(query_id=1, name="q", tables=("a",))
        reliable = sync_points_between(query, catalog, 0.0, 10.0)
        assert reliable == [1.0, 5.0, 9.0]
        all_skip = FaultPlan(sync_skip_prob=1.0, seed=4)
        assert sync_points_between(query, catalog, 0.0, 10.0, all_skip) == []

    def test_optimizer_seed_plan_avoids_down_site(self):
        catalog = planning_catalog()
        provider = StaticCostProvider(
            catalog, by_remote_count={0: 1.0, 1: 3.0, 2: 5.0}
        )
        query = DSSQuery(query_id=1, name="q", tables=("a",))
        availability = FaultPlan(
            site_outages={0: OutageTimeline([Window(0.0, 500.0)])}
        )
        blind = IVQPOptimizer(catalog, provider, RATES)
        aware = IVQPOptimizer(
            catalog, provider, RATES, availability=availability
        )
        blind_plan = blind.choose_plan(query, submitted_at=2.0)
        aware_plan = aware.choose_plan(query, submitted_at=2.0)
        # The blind optimizer may bet on the unreachable base table; the
        # aware one must not.
        assert "a" not in aware_plan.remote_tables
        assert aware_plan.information_value > 0.0
        assert blind_plan.information_value >= aware_plan.information_value

    def test_optimizer_without_availability_unchanged(self):
        catalog = planning_catalog()
        provider = StaticCostProvider(
            catalog, by_remote_count={0: 1.0, 1: 3.0, 2: 5.0}
        )
        query = DSSQuery(query_id=1, name="q", tables=("a", "b"))
        plain = IVQPOptimizer(catalog, provider, RATES)
        with_none = IVQPOptimizer(catalog, provider, RATES, availability=None)
        first = plain.choose_plan(query, submitted_at=0.0)
        second = with_none.choose_plan(query, submitted_at=0.0)
        assert first.describe() == second.describe()
        assert first.information_value == second.information_value


class TestGracefulDegradationSweep:
    @pytest.fixture(scope="class")
    def table(self):
        from repro.experiments.config import TpchSetup
        from repro.experiments.faults import FaultSweepConfig, run_fault_sweep

        config = FaultSweepConfig(
            setup=TpchSetup(scale=0.0005, seed=7),
            outage_rates=(0.0, 0.02),
            outage_mean_duration=8.0,
            approaches=("ivqp",),
            rounds=1,
        )
        return run_fault_sweep(config)

    def rows(self, table):
        return [dict(zip(table.headers, row)) for row in table.rows]

    def test_every_cell_reported(self, table):
        rows = self.rows(table)
        assert len(rows) == 4  # 2 rates x 1 approach x 2 policies
        assert {row["policy"] for row in rows} == {"retry", "none"}

    def test_retry_policy_never_loses_a_query(self, table):
        for row in self.rows(table):
            if row["policy"] == "retry":
                assert row["failed"] == 0

    def test_fault_free_rate_is_policy_invariant(self, table):
        clean = [r for r in self.rows(table) if r["outage_rate"] == 0.0]
        ivs = {r["mean_iv"] for r in clean}
        assert len(ivs) == 1  # no outages -> the policies never diverge

    def test_outages_cost_information_value(self, table):
        by_key = {
            (r["outage_rate"], r["policy"]): r for r in self.rows(table)
        }
        assert (
            by_key[(0.02, "retry")]["mean_iv"]
            <= by_key[(0.0, "retry")]["mean_iv"]
        )
        faulty = by_key[(0.02, "retry")]
        assert faulty["retries"] + faulty["failovers"] + faulty["degraded"] > 0

    def test_brittle_policy_loses_at_least_as_many(self, table):
        by_key = {
            (r["outage_rate"], r["policy"]): r for r in self.rows(table)
        }
        assert (
            by_key[(0.02, "none")]["failed"]
            >= by_key[(0.02, "retry")]["failed"]
        )
