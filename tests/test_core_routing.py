"""Unit tests: the precomputed routing table (paper Section 3.1)."""

from __future__ import annotations

import pytest

from repro.core.optimizer import IVQPOptimizer
from repro.core.routing import PlanShape, PrecomputedRouter, RoutingTable
from repro.core.value import DiscountRates
from repro.errors import OptimizationError
from repro.workload.query import DSSQuery


def build_table(fig4_world, horizon=40.0) -> RoutingTable:
    catalog, provider, _query, rates = fig4_world
    return RoutingTable(catalog, provider, rates, horizon=horizon)


class TestRegistration:
    def test_register_counts_intervals(self, fig4_world):
        _catalog, _provider, query, _rates = fig4_world
        table = build_table(fig4_world)
        intervals = table.register(query)
        assert intervals > 4  # one per sync completion within the horizon
        assert table.registered == 1

    def test_register_all(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        other = DSSQuery(query_id=2, name="two", tables=("T1", "T2"))
        table = build_table(fig4_world)
        total = table.register_all([query, other])
        assert table.registered == 2
        assert total > 8

    def test_horizon_must_exceed_start(self, fig4_world):
        catalog, provider, _query, rates = fig4_world
        with pytest.raises(OptimizationError):
            RoutingTable(catalog, provider, rates, horizon=5.0, start=5.0)

    def test_unknown_table_rejected_at_registration(self, fig4_world):
        table = build_table(fig4_world)
        bad = DSSQuery(query_id=9, name="bad", tables=("NOPE",))
        with pytest.raises(Exception):
            table.register(bad)


class TestRoutingEquivalence:
    def test_matches_live_optimizer_at_interval_starts(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        table = build_table(fig4_world)
        table.register(query)
        optimizer = IVQPOptimizer(catalog, provider, rates)
        for submit in (11.0, 12.5, 13.0, 14.0, 16.0, 20.0, 22.0):
            routed = table.route(query, submit)
            live = optimizer.choose_plan(query, submit)
            assert routed.information_value == pytest.approx(
                live.information_value, rel=1e-9
            ), submit

    def test_near_optimal_inside_intervals(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        table = build_table(fig4_world)
        table.register(query)
        optimizer = IVQPOptimizer(catalog, provider, rates)
        for submit in (11.3, 12.9, 14.7, 17.2, 19.9):
            routed = table.route(query, submit)
            live = optimizer.choose_plan(query, submit)
            assert routed.information_value >= 0.9 * live.information_value

    def test_routed_plans_are_valid(self, fig4_world):
        _catalog, _provider, query, _rates = fig4_world
        table = build_table(fig4_world)
        table.register(query)
        plan = table.route(query, 15.2)
        assert plan.submitted_at == 15.2
        assert plan.start_time >= 15.2
        assert {v.table for v in plan.versions} == set(query.tables)


class TestFallbacks:
    def test_unregistered_query_falls_back_to_live_search(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        table = build_table(fig4_world)
        plan = table.route(query, 11.0)
        live = IVQPOptimizer(catalog, provider, rates).choose_plan(query, 11.0)
        assert plan.information_value == pytest.approx(live.information_value)
        assert table.stats.fallbacks == 1
        assert table.stats.hit_rate == 0.0

    def test_submission_past_horizon_falls_back(self, fig4_world):
        _catalog, _provider, query, _rates = fig4_world
        table = build_table(fig4_world, horizon=30.0)
        table.register(query)
        table.route(query, 50.0)
        assert table.stats.fallbacks == 1

    def test_hit_rate_accounting(self, fig4_world):
        _catalog, _provider, query, _rates = fig4_world
        table = build_table(fig4_world)
        table.register(query)
        table.route(query, 12.0)
        table.route(query, 13.0)
        table.route(query, 99.0)  # beyond horizon
        assert table.stats.lookups == 3
        assert table.stats.hits == 2
        assert table.stats.hit_rate == pytest.approx(2 / 3)


class TestPrecomputedRouter:
    def test_is_a_system_router(self, fig4_world):
        catalog, provider, query, rates = fig4_world
        table = build_table(fig4_world)
        table.register(query)
        router = PrecomputedRouter(table)
        plan = router.choose_plan(query, 12.0)
        assert plan.query is query

    def test_in_system_stream(self):
        """End-to-end: a system whose router is the precomputed table."""
        from repro.federation.system import SystemConfig, TableSpec, build_system

        config = SystemConfig(
            tables=[
                TableSpec("a", site=0, row_count=2_000),
                TableSpec("b", site=1, row_count=3_000),
            ],
            replicated=["a", "b"],
            sync_mode="periodic",
            sync_mean_interval=5.0,
            rates=DiscountRates(0.02, 0.02),
            seed=6,
        )
        queries = [
            DSSQuery(query_id=i + 1, name=f"q{i}", tables=("a", "b"))
            for i in range(4)
        ]

        def factory(catalog, cost_model, rates):
            table = RoutingTable(catalog, cost_model, rates, horizon=200.0)
            table.register_all(queries)
            return PrecomputedRouter(table)

        system = build_system(config, factory)
        for index, query in enumerate(queries):
            system.submit(query, at=10.0 * (index + 1))
        system.run()
        assert len(system.outcomes) == 4
        assert all(o.information_value > 0 for o in system.outcomes)


class TestPlanShape:
    def test_shape_is_hashable_value_object(self):
        a = PlanShape(frozenset({"x"}), 1)
        b = PlanShape(frozenset({"x"}), 1)
        assert a == b
        assert hash(a) == hash(b)
