"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one type at an API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event simulation kernel was used incorrectly."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or on a stopped simulator."""


class ProcessError(SimulationError):
    """A simulation process yielded something the kernel cannot interpret."""


class CatalogError(ReproError):
    """A table or replica lookup failed, or a catalog was mis-configured."""


class PlanError(ReproError):
    """A query plan is malformed or infeasible (e.g. missing a version)."""


class OptimizationError(ReproError):
    """The IVQP optimizer or the MQO scheduler could not produce a plan."""


class WorkloadError(ReproError):
    """A workload or query specification is invalid."""


class EngineError(ReproError):
    """The mini relational engine rejected a schema, expression or query."""


class ConfigError(ReproError):
    """An experiment or system configuration is invalid."""


class DurabilityError(ReproError):
    """A journal or snapshot is corrupt, truncated, or inconsistent.

    ``offset`` is the byte offset of the first bad record in the journal
    file (``None`` when the failure is not tied to a file position), so
    operators can inspect exactly where a torn write landed.
    """

    def __init__(self, message: str, offset: int | None = None) -> None:
        super().__init__(message)
        self.offset = offset
